#include "kb/knowledge_base.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"
#include "io/coding.h"

namespace sqe::kb {

namespace {

template <typename T>
bool SortedContains(std::span<const T> sorted, T value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

void EncodeTitles(std::string* out, const StringColumn& titles) {
  io::PutVarint64(out, titles.size());
  for (size_t i = 0; i < titles.size(); ++i) {
    io::PutLengthPrefixed(out, titles[i]);
  }
}

bool DecodeTitles(std::string_view in, std::vector<std::string>* titles) {
  uint64_t n;
  if (!io::GetVarint64(&in, &n)) return false;
  titles->clear();
  titles->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view t;
    if (!io::GetLengthPrefixed(&in, &t)) return false;
    titles->emplace_back(t);
  }
  return in.empty();
}

// CSR encoding: varint node count, then per node the delta-coded sorted
// adjacency list (varint degree, varint gaps). Legacy (v1) payloads only;
// v3 stores the offset/target arrays raw for in-place use.
template <typename T>
void EncodeCsr(std::string* out, const VecOrView<uint64_t>& offsets,
               const VecOrView<T>& targets) {
  const size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  io::PutVarint64(out, n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t begin = offsets[i], end = offsets[i + 1];
    io::PutVarint64(out, end - begin);
    uint64_t prev = 0;
    for (uint64_t j = begin; j < end; ++j) {
      uint64_t v = targets[j];
      io::PutVarint64(out, v - prev);  // gaps (first is absolute)
      prev = v;
    }
  }
}

template <typename T>
bool DecodeCsr(std::string_view in, std::vector<uint64_t>* offsets,
               std::vector<T>* targets) {
  uint64_t n;
  if (!io::GetVarint64(&in, &n)) return false;
  offsets->assign(n + 1, 0);
  targets->clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t degree;
    if (!io::GetVarint64(&in, &degree)) return false;
    uint64_t prev = 0;
    for (uint64_t j = 0; j < degree; ++j) {
      uint64_t gap;
      if (!io::GetVarint64(&in, &gap)) return false;
      prev += gap;
      if (prev > UINT32_MAX) return false;
      targets->push_back(static_cast<T>(prev));
    }
    (*offsets)[i + 1] = (*offsets)[i] + degree;
  }
  return in.empty();
}
}  // namespace

ArticleId KnowledgeBase::FindArticle(std::string_view title) const {
  std::span<const ArticleId> order = article_title_order_.span();
  auto it = std::lower_bound(order.begin(), order.end(), title,
                             [this](ArticleId id, std::string_view t) {
                               return article_titles_[id] < t;
                             });
  if (it != order.end() && article_titles_[*it] == title) return *it;
  return kInvalidArticle;
}

CategoryId KnowledgeBase::FindCategory(std::string_view title) const {
  std::span<const CategoryId> order = category_title_order_.span();
  auto it = std::lower_bound(order.begin(), order.end(), title,
                             [this](CategoryId id, std::string_view t) {
                               return category_titles_[id] < t;
                             });
  if (it != order.end() && category_titles_[*it] == title) return *it;
  return kInvalidCategory;
}

bool KnowledgeBase::HasLink(ArticleId from, ArticleId to) const {
  return SortedContains(OutLinks(from), to);
}

bool KnowledgeBase::ReciprocallyLinked(ArticleId a, ArticleId b) const {
  return SortedContains(ReciprocalLinks(a), b);
}

void KnowledgeBase::BuildReciprocalLinks() {
  const size_t n = article_titles_.size();
  std::vector<uint64_t>& offsets = reciprocal_offsets_.vec();
  std::vector<ArticleId>& targets = reciprocal_targets_.vec();
  offsets.assign(n + 1, 0);
  targets.clear();
  for (size_t a = 0; a < n; ++a) {
    std::span<const ArticleId> out = OutLinks(static_cast<ArticleId>(a));
    std::span<const ArticleId> in = InLinks(static_cast<ArticleId>(a));
    // Sorted intersection: b is a mutual neighbor iff a->b and b->a exist.
    size_t i = 0, j = 0;
    while (i < out.size() && j < in.size()) {
      if (out[i] < in[j]) {
        ++i;
      } else if (in[j] < out[i]) {
        ++j;
      } else {
        targets.push_back(out[i]);
        ++i;
        ++j;
      }
    }
    offsets[a + 1] = targets.size();
  }
}

void KnowledgeBase::BuildTitleOrder() {
  std::vector<ArticleId>& aorder = article_title_order_.vec();
  aorder.resize(article_titles_.size());
  std::iota(aorder.begin(), aorder.end(), 0);
  std::sort(aorder.begin(), aorder.end(), [this](ArticleId a, ArticleId b) {
    return article_titles_[a] < article_titles_[b];
  });
  std::vector<CategoryId>& corder = category_title_order_.vec();
  corder.resize(category_titles_.size());
  std::iota(corder.begin(), corder.end(), 0);
  std::sort(corder.begin(), corder.end(), [this](CategoryId a, CategoryId b) {
    return category_titles_[a] < category_titles_[b];
  });
}

namespace {
// Structural check for one CSR relation: offsets shaped N+1 starting at 0,
// monotone, ending at |targets|; every target id in range; every adjacency
// list strictly ascending (sorted, no duplicates — binary-search lookups
// and two-pointer intersections both rely on this).
template <typename T>
Status ValidateCsr(std::string_view name, std::span<const uint64_t> offsets,
                   std::span<const T> targets, size_t num_nodes,
                   size_t target_space) {
  if (offsets.empty()) {
    if (num_nodes == 0 && targets.empty()) return Status::OK();
    return Status::Corruption(StrFormat("%s: offsets empty but %zu nodes",
                                        std::string(name).c_str(), num_nodes));
  }
  if (offsets.size() != num_nodes + 1) {
    return Status::Corruption(
        StrFormat("%s: offsets size %zu != num nodes %zu + 1",
                  std::string(name).c_str(), offsets.size(), num_nodes));
  }
  if (offsets.front() != 0) {
    return Status::Corruption(StrFormat("%s: offsets[0] = %llu, want 0",
                                        std::string(name).c_str(),
                                        (unsigned long long)offsets.front()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(StrFormat(
          "%s: offsets not monotone at node %zu (%llu > %llu)",
          std::string(name).c_str(), i, (unsigned long long)offsets[i],
          (unsigned long long)offsets[i + 1]));
    }
  }
  if (offsets.back() != targets.size()) {
    return Status::Corruption(StrFormat(
        "%s: offsets end at %llu but %zu targets",
        std::string(name).c_str(), (unsigned long long)offsets.back(),
        targets.size()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    for (uint64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
      if (targets[j] >= target_space) {
        return Status::Corruption(StrFormat(
            "%s: node %zu target %u out of range (space %zu) at position %llu",
            std::string(name).c_str(), i, (unsigned)targets[j], target_space,
            (unsigned long long)j));
      }
      if (j > offsets[i] && targets[j - 1] >= targets[j]) {
        return Status::Corruption(StrFormat(
            "%s: adjacency of node %zu not strictly ascending at position "
            "%llu (%u >= %u)",
            std::string(name).c_str(), i, (unsigned long long)j,
            (unsigned)targets[j - 1], (unsigned)targets[j]));
      }
    }
  }
  return Status::OK();
}

// Multiset equality between a stored reverse CSR and the reverse computed
// from the forward relation. Detects a reverse CSR that drifted from its
// source (e.g. a stale or tampered derived structure).
template <typename Src, typename Dst>
Status ValidateReverseCsr(std::string_view name,
                          std::span<const uint64_t> fwd_offsets,
                          std::span<const Dst> fwd_targets,
                          std::span<const uint64_t> rev_offsets,
                          std::span<const Src> rev_sources,
                          size_t num_targets) {
  std::vector<uint64_t> expect_deg(num_targets, 0);
  for (Dst t : fwd_targets) expect_deg[t]++;
  for (size_t t = 0; t < num_targets; ++t) {
    uint64_t got = rev_offsets[t + 1] - rev_offsets[t];
    if (got != expect_deg[t]) {
      return Status::Corruption(StrFormat(
          "%s: node %zu has %llu reverse edges, forward relation implies "
          "%llu",
          std::string(name).c_str(), t, (unsigned long long)got,
          (unsigned long long)expect_deg[t]));
    }
  }
  // Degrees match; rebuild the reverse adjacency in O(E) by scanning the
  // forward edges in ascending source order (so each target's rebuilt
  // source list comes out ascending) and compare element-wise with the
  // stored CSR, which ValidateCsr already proved is sorted. Equal sorted
  // sequences <=> equal edge multisets, without a per-edge binary search.
  std::vector<uint64_t> cursor(rev_offsets.begin(), rev_offsets.end() - 1);
  std::vector<Src> rebuilt(rev_sources.size());
  const size_t n = fwd_offsets.empty() ? 0 : fwd_offsets.size() - 1;
  for (size_t s = 0; s < n; ++s) {
    for (uint64_t j = fwd_offsets[s]; j < fwd_offsets[s + 1]; ++j) {
      rebuilt[cursor[fwd_targets[j]]++] = static_cast<Src>(s);
    }
  }
  for (size_t t = 0; t < num_targets; ++t) {
    for (uint64_t j = rev_offsets[t]; j < rev_offsets[t + 1]; ++j) {
      if (rev_sources[j] != rebuilt[j]) {
        return Status::Corruption(StrFormat(
            "%s: reverse edge %zu<-%u has no forward counterpart",
            std::string(name).c_str(), t, (unsigned)rev_sources[j]));
      }
    }
  }
  return Status::OK();
}

// The title-order permutation behind the binary-search title map: size N,
// ids in range, titles strictly ascending along the order (which also
// proves it is a permutation and the titles are duplicate-free).
template <typename Id>
Status ValidateTitleOrder(std::string_view what, const StringColumn& titles,
                          std::span<const Id> order) {
  const size_t n = titles.size();
  if (order.size() != n) {
    return Status::Corruption(
        StrFormat("%s title map has %zu entries for %zu nodes "
                  "(duplicate or missing titles)",
                  std::string(what).c_str(), order.size(), n));
  }
  for (size_t k = 0; k < n; ++k) {
    if (order[k] >= n) {
      return Status::Corruption(
          StrFormat("%s title map entry %zu out of range",
                    std::string(what).c_str(), k));
    }
    if (k > 0 && !(titles[order[k - 1]] < titles[order[k]])) {
      return Status::Corruption(StrFormat(
          "%s title map not strictly ascending at rank %zu (duplicate or "
          "unsorted titles)",
          std::string(what).c_str(), k));
    }
  }
  return Status::OK();
}
}  // namespace

Status KnowledgeBase::Validate() const {
  const size_t na = article_titles_.size();
  const size_t nc = category_titles_.size();

  SQE_RETURN_IF_ERROR(ValidateCsr("article_links",
                                  article_link_offsets_.span(),
                                  article_link_targets_.span(), na, na));
  SQE_RETURN_IF_ERROR(ValidateCsr("article_inlinks",
                                  article_inlink_offsets_.span(),
                                  article_inlink_sources_.span(), na, na));
  SQE_RETURN_IF_ERROR(ValidateCsr("memberships", membership_offsets_.span(),
                                  membership_targets_.span(), na, nc));
  SQE_RETURN_IF_ERROR(ValidateCsr("category_articles",
                                  cat_article_offsets_.span(),
                                  cat_article_targets_.span(), nc, na));
  SQE_RETURN_IF_ERROR(ValidateCsr("category_parents",
                                  cat_parent_offsets_.span(),
                                  cat_parent_targets_.span(), nc, nc));
  SQE_RETURN_IF_ERROR(ValidateCsr("category_children",
                                  cat_child_offsets_.span(),
                                  cat_child_targets_.span(), nc, nc));
  SQE_RETURN_IF_ERROR(ValidateCsr("reciprocal_links",
                                  reciprocal_offsets_.span(),
                                  reciprocal_targets_.span(), na, na));

  // Reverse relations must mirror their forward CSRs edge for edge.
  SQE_RETURN_IF_ERROR((ValidateReverseCsr<ArticleId, ArticleId>(
      "article_inlinks", article_link_offsets_.span(),
      article_link_targets_.span(), article_inlink_offsets_.span(),
      article_inlink_sources_.span(), na)));
  SQE_RETURN_IF_ERROR((ValidateReverseCsr<ArticleId, CategoryId>(
      "category_articles", membership_offsets_.span(),
      membership_targets_.span(), cat_article_offsets_.span(),
      cat_article_targets_.span(), nc)));
  SQE_RETURN_IF_ERROR((ValidateReverseCsr<CategoryId, CategoryId>(
      "category_children", cat_parent_offsets_.span(),
      cat_parent_targets_.span(), cat_child_offsets_.span(),
      cat_child_targets_.span(), nc)));

  // Reciprocal CSR symmetry: each article's list must equal the sorted
  // intersection of its out- and in-links (the "doubly linked" pairs the
  // motif finder scans). Recomputing the two-pointer merge is O(E).
  for (size_t a = 0; a < na; ++a) {
    std::span<const ArticleId> out = OutLinks(static_cast<ArticleId>(a));
    std::span<const ArticleId> in = InLinks(static_cast<ArticleId>(a));
    std::span<const ArticleId> rec =
        ReciprocalLinks(static_cast<ArticleId>(a));
    size_t i = 0, j = 0, r = 0;
    while (i < out.size() && j < in.size()) {
      if (out[i] < in[j]) {
        ++i;
      } else if (in[j] < out[i]) {
        ++j;
      } else {
        if (r >= rec.size() || rec[r] != out[i]) {
          return Status::Corruption(StrFormat(
              "reciprocal_links: article %zu missing mutual neighbor %u "
              "(asymmetric reciprocal CSR)",
              a, (unsigned)out[i]));
        }
        ++i;
        ++j;
        ++r;
      }
    }
    if (r != rec.size()) {
      return Status::Corruption(StrFormat(
          "reciprocal_links: article %zu lists %u which is not a mutual "
          "out/in neighbor",
          a, (unsigned)rec[r]));
    }
  }

  // Title orders must be strictly ascending permutations of the id space
  // (duplicate titles or a stale order break the binary-search lookups).
  SQE_RETURN_IF_ERROR(ValidateTitleOrder<ArticleId>(
      "article", article_titles_, article_title_order_.span()));
  SQE_RETURN_IF_ERROR(ValidateTitleOrder<CategoryId>(
      "category", category_titles_, category_title_order_.span()));
  for (size_t i = 0; i < na; ++i) {
    if (FindArticle(article_titles_[i]) != static_cast<ArticleId>(i)) {
      return Status::Corruption(
          StrFormat("article title map does not round-trip id %zu", i));
    }
  }
  for (size_t i = 0; i < nc; ++i) {
    if (FindCategory(category_titles_[i]) != static_cast<CategoryId>(i)) {
      return Status::Corruption(
          StrFormat("category title map does not round-trip id %zu", i));
    }
  }
  return Status::OK();
}

bool KnowledgeBase::HasMembership(ArticleId article,
                                  CategoryId category) const {
  return SortedContains(CategoriesOf(article), category);
}

bool KnowledgeBase::HasCategoryLink(CategoryId child,
                                    CategoryId parent) const {
  return SortedContains(ParentCategories(child), parent);
}

namespace {
// v3 block helpers: raw little-endian arrays at aligned offsets.
template <typename T>
void AddArrayBlock(io::SnapshotWriter* writer, std::string_view name,
                   std::span<const T> values) {
  std::string block;
  io::AppendArray(&block, values);
  writer->AddBlock(name, std::move(block));
}

// Title column as two blocks: u64 offsets (N+1) and the contiguous blob.
void AddTitleBlocks(io::SnapshotWriter* writer, std::string_view offsets_name,
                    std::string_view blob_name, const StringColumn& titles) {
  std::vector<uint64_t> offsets;
  offsets.reserve(titles.size() + 1);
  offsets.push_back(0);
  std::string blob;
  for (size_t i = 0; i < titles.size(); ++i) {
    blob.append(titles[i]);
    offsets.push_back(blob.size());
  }
  AddArrayBlock<uint64_t>(writer, offsets_name, offsets);
  writer->AddBlock(blob_name, std::move(blob));
}
}  // namespace

std::string KnowledgeBase::SerializeToString(uint32_t version) const {
  SQE_CHECK_MSG(version == 1 || version >= io::kAlignedSnapshotVersion,
                "unsupported KB snapshot version");
  io::SnapshotWriter writer(io::kKbSnapshotMagic, version);

  if (version < io::kAlignedSnapshotVersion) {
    std::string block;
    EncodeTitles(&block, article_titles_);
    writer.AddBlock("article_titles", std::move(block));
    block.clear();

    EncodeTitles(&block, category_titles_);
    writer.AddBlock("category_titles", std::move(block));
    block.clear();

    EncodeCsr(&block, article_link_offsets_, article_link_targets_);
    writer.AddBlock("article_links", std::move(block));
    block.clear();

    EncodeCsr(&block, membership_offsets_, membership_targets_);
    writer.AddBlock("memberships", std::move(block));
    block.clear();

    EncodeCsr(&block, cat_parent_offsets_, cat_parent_targets_);
    writer.AddBlock("category_links", std::move(block));
    return writer.Serialize();
  }

  // Aligned (v3) layout: every array raw, every derived structure persisted
  // so a load decodes and rebuilds nothing.
  const uint64_t meta[2] = {article_titles_.size(), category_titles_.size()};
  AddArrayBlock<uint64_t>(&writer, "meta", meta);
  AddTitleBlocks(&writer, "titles.article_offsets", "titles.article_blob",
                 article_titles_);
  AddTitleBlocks(&writer, "titles.category_offsets", "titles.category_blob",
                 category_titles_);
  AddArrayBlock(&writer, "titles.article_order", article_title_order_.span());
  AddArrayBlock(&writer, "titles.category_order",
                category_title_order_.span());

  AddArrayBlock(&writer, "csr.article_links.offsets",
                article_link_offsets_.span());
  AddArrayBlock(&writer, "csr.article_links.targets",
                article_link_targets_.span());
  AddArrayBlock(&writer, "csr.article_inlinks.offsets",
                article_inlink_offsets_.span());
  AddArrayBlock(&writer, "csr.article_inlinks.targets",
                article_inlink_sources_.span());
  AddArrayBlock(&writer, "csr.memberships.offsets",
                membership_offsets_.span());
  AddArrayBlock(&writer, "csr.memberships.targets",
                membership_targets_.span());
  AddArrayBlock(&writer, "csr.category_articles.offsets",
                cat_article_offsets_.span());
  AddArrayBlock(&writer, "csr.category_articles.targets",
                cat_article_targets_.span());
  AddArrayBlock(&writer, "csr.category_parents.offsets",
                cat_parent_offsets_.span());
  AddArrayBlock(&writer, "csr.category_parents.targets",
                cat_parent_targets_.span());
  AddArrayBlock(&writer, "csr.category_children.offsets",
                cat_child_offsets_.span());
  AddArrayBlock(&writer, "csr.category_children.targets",
                cat_child_targets_.span());
  AddArrayBlock(&writer, "csr.reciprocal.offsets",
                reciprocal_offsets_.span());
  AddArrayBlock(&writer, "csr.reciprocal.targets",
                reciprocal_targets_.span());
  return writer.Serialize();
}

Status KnowledgeBase::SaveToFile(const std::string& path) const {
  return io::WriteStringToFile(path, SerializeToString());
}

namespace {
// Builds the reverse of a CSR relation (targets become sources).
template <typename Src, typename Dst>
void BuildReverseCsr(size_t num_targets,
                     const std::vector<uint64_t>& fwd_offsets,
                     const std::vector<Dst>& fwd_targets,
                     std::vector<uint64_t>* rev_offsets,
                     std::vector<Src>* rev_sources) {
  rev_offsets->assign(num_targets + 1, 0);
  for (Dst t : fwd_targets) (*rev_offsets)[t + 1]++;
  for (size_t i = 1; i < rev_offsets->size(); ++i) {
    (*rev_offsets)[i] += (*rev_offsets)[i - 1];
  }
  rev_sources->assign(fwd_targets.size(), 0);
  std::vector<uint64_t> cursor(rev_offsets->begin(), rev_offsets->end() - 1);
  const size_t n = fwd_offsets.size() - 1;
  for (size_t s = 0; s < n; ++s) {
    for (uint64_t j = fwd_offsets[s]; j < fwd_offsets[s + 1]; ++j) {
      Dst t = fwd_targets[j];
      (*rev_sources)[cursor[t]++] = static_cast<Src>(s);
    }
  }
  // Sources come out sorted already because we scan s ascending.
}
}  // namespace

Result<KnowledgeBase> KnowledgeBase::LoadLegacy(
    const io::SnapshotReader& reader) {
  KnowledgeBase kb;
  auto require = [&](std::string_view name) -> Result<std::string_view> {
    auto block = reader.GetBlock(name);
    if (!block.ok()) {
      return Status::Corruption("KB snapshot missing block: " +
                                std::string(name));
    }
    return block;
  };

  SQE_ASSIGN_OR_RETURN(std::string_view titles_block,
                       require("article_titles"));
  if (!DecodeTitles(titles_block, &kb.article_titles_.owned())) {
    return Status::Corruption("bad article_titles block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view cat_titles_block,
                       require("category_titles"));
  if (!DecodeTitles(cat_titles_block, &kb.category_titles_.owned())) {
    return Status::Corruption("bad category_titles block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view links_block, require("article_links"));
  if (!DecodeCsr(links_block, &kb.article_link_offsets_.vec(),
                 &kb.article_link_targets_.vec())) {
    return Status::Corruption("bad article_links block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view memb_block, require("memberships"));
  if (!DecodeCsr(memb_block, &kb.membership_offsets_.vec(),
                 &kb.membership_targets_.vec())) {
    return Status::Corruption("bad memberships block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view cat_block, require("category_links"));
  if (!DecodeCsr(cat_block, &kb.cat_parent_offsets_.vec(),
                 &kb.cat_parent_targets_.vec())) {
    return Status::Corruption("bad category_links block");
  }

  // Validate CSR shapes against node counts.
  if (kb.article_link_offsets_.size() != kb.article_titles_.size() + 1 ||
      kb.membership_offsets_.size() != kb.article_titles_.size() + 1 ||
      kb.cat_parent_offsets_.size() != kb.category_titles_.size() + 1) {
    return Status::Corruption("KB snapshot adjacency/node count mismatch");
  }
  for (ArticleId t : kb.article_link_targets_) {
    if (t >= kb.article_titles_.size()) {
      return Status::Corruption("article link target out of range");
    }
  }
  for (CategoryId t : kb.membership_targets_) {
    if (t >= kb.category_titles_.size()) {
      return Status::Corruption("membership target out of range");
    }
  }
  for (CategoryId t : kb.cat_parent_targets_) {
    if (t >= kb.category_titles_.size()) {
      return Status::Corruption("category link target out of range");
    }
  }

  // Legacy snapshots carry the forward relations only; every derived
  // structure is rebuilt here (v3 images persist them instead).
  BuildReverseCsr<ArticleId, ArticleId>(
      kb.article_titles_.size(), kb.article_link_offsets_.vec(),
      kb.article_link_targets_.vec(), &kb.article_inlink_offsets_.vec(),
      &kb.article_inlink_sources_.vec());
  BuildReverseCsr<ArticleId, CategoryId>(
      kb.category_titles_.size(), kb.membership_offsets_.vec(),
      kb.membership_targets_.vec(), &kb.cat_article_offsets_.vec(),
      &kb.cat_article_targets_.vec());
  BuildReverseCsr<CategoryId, CategoryId>(
      kb.category_titles_.size(), kb.cat_parent_offsets_.vec(),
      kb.cat_parent_targets_.vec(), &kb.cat_child_offsets_.vec(),
      &kb.cat_child_targets_.vec());

  kb.BuildReciprocalLinks();
  kb.BuildTitleOrder();
  return kb;
}

Result<KnowledgeBase> KnowledgeBase::LoadAligned(
    const io::SnapshotReader& reader, io::LoadMode mode) {
  KnowledgeBase kb;
  auto require = [&](std::string_view name) -> Result<std::string_view> {
    auto block = reader.GetBlock(name);
    if (!block.ok()) {
      return Status::Corruption("KB snapshot missing block: " +
                                std::string(name));
    }
    return block;
  };
  // A v3 block is the raw array itself; this fetches and reinterprets one.
  auto array_of = [&]<typename T>(std::string_view name,
                                  std::in_place_type_t<T>)
      -> Result<std::span<const T>> {
    SQE_ASSIGN_OR_RETURN(std::string_view block, require(name));
    return io::BlockAsArray<T>(block, name);
  };
  // Loads one array block into a VecOrView member: a view in zero-copy
  // mode, an owned copy in heap mode. `want` pins the element count
  // (SIZE_MAX leaves it to Validate, which cross-checks every CSR shape).
  auto load = [&](std::string_view name, auto& dst, size_t want) -> Status {
    using T = typename std::remove_reference_t<decltype(dst)>::value_type;
    SQE_ASSIGN_OR_RETURN(std::span<const T> arr,
                         array_of(name, std::in_place_type<T>));
    if (want != SIZE_MAX && arr.size() != want) {
      return Status::Corruption(StrFormat("%s: %zu elements, want %zu",
                                          std::string(name).c_str(),
                                          arr.size(), want));
    }
    if (mode == io::LoadMode::kZeroCopy) {
      dst.SetView(arr);
    } else {
      dst.Assign(arr);
    }
    return Status::OK();
  };

  SQE_ASSIGN_OR_RETURN(std::span<const uint64_t> meta,
                       array_of("meta", std::in_place_type<uint64_t>));
  if (meta.size() != 2) {
    return Status::Corruption("KB snapshot meta block malformed");
  }
  const uint64_t na = meta[0], nc = meta[1];
  if (na >= UINT32_MAX || nc >= UINT32_MAX) {
    return Status::Corruption("KB snapshot node count exceeds id space");
  }

  // Titles: offsets + blob per column, layout-validated by StringColumn.
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> aoff,
      array_of("titles.article_offsets", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(std::string_view ablob, require("titles.article_blob"));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> coff,
      array_of("titles.category_offsets", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(std::string_view cblob,
                       require("titles.category_blob"));
  if (aoff.size() != na + 1 || coff.size() != nc + 1) {
    return Status::Corruption("KB snapshot title offsets/meta mismatch");
  }
  if (mode == io::LoadMode::kZeroCopy) {
    SQE_RETURN_IF_ERROR(
        kb.article_titles_.SetMapped(aoff, ablob, "article titles"));
    SQE_RETURN_IF_ERROR(
        kb.category_titles_.SetMapped(coff, cblob, "category titles"));
  } else {
    SQE_RETURN_IF_ERROR(
        kb.article_titles_.AssignMapped(aoff, ablob, "article titles"));
    SQE_RETURN_IF_ERROR(
        kb.category_titles_.AssignMapped(coff, cblob, "category titles"));
  }

  SQE_RETURN_IF_ERROR(load("titles.article_order", kb.article_title_order_,
                           na));
  SQE_RETURN_IF_ERROR(load("titles.category_order", kb.category_title_order_,
                           nc));

  SQE_RETURN_IF_ERROR(load("csr.article_links.offsets",
                           kb.article_link_offsets_, na + 1));
  SQE_RETURN_IF_ERROR(load("csr.article_links.targets",
                           kb.article_link_targets_, SIZE_MAX));
  SQE_RETURN_IF_ERROR(load("csr.article_inlinks.offsets",
                           kb.article_inlink_offsets_, na + 1));
  SQE_RETURN_IF_ERROR(load("csr.article_inlinks.targets",
                           kb.article_inlink_sources_, SIZE_MAX));
  SQE_RETURN_IF_ERROR(load("csr.memberships.offsets", kb.membership_offsets_,
                           na + 1));
  SQE_RETURN_IF_ERROR(load("csr.memberships.targets", kb.membership_targets_,
                           SIZE_MAX));
  SQE_RETURN_IF_ERROR(load("csr.category_articles.offsets",
                           kb.cat_article_offsets_, nc + 1));
  SQE_RETURN_IF_ERROR(load("csr.category_articles.targets",
                           kb.cat_article_targets_, SIZE_MAX));
  SQE_RETURN_IF_ERROR(load("csr.category_parents.offsets",
                           kb.cat_parent_offsets_, nc + 1));
  SQE_RETURN_IF_ERROR(load("csr.category_parents.targets",
                           kb.cat_parent_targets_, SIZE_MAX));
  SQE_RETURN_IF_ERROR(load("csr.category_children.offsets",
                           kb.cat_child_offsets_, nc + 1));
  SQE_RETURN_IF_ERROR(load("csr.category_children.targets",
                           kb.cat_child_targets_, SIZE_MAX));
  SQE_RETURN_IF_ERROR(load("csr.reciprocal.offsets", kb.reciprocal_offsets_,
                           na + 1));
  SQE_RETURN_IF_ERROR(load("csr.reciprocal.targets", kb.reciprocal_targets_,
                           SIZE_MAX));

  if (mode == io::LoadMode::kZeroCopy) kb.retainer_ = reader.retainer();
  return kb;
}

Result<KnowledgeBase> KnowledgeBase::FromReader(
    const io::SnapshotReader& reader, io::LoadMode mode) {
  if (reader.version() < io::kAlignedSnapshotVersion &&
      mode == io::LoadMode::kZeroCopy) {
    return Status::InvalidArgument(
        "zero-copy load requires an aligned (v3+) KB snapshot");
  }
  Result<KnowledgeBase> kb =
      reader.version() >= io::kAlignedSnapshotVersion
          ? LoadAligned(reader, mode)
          : LoadLegacy(reader);
  if (!kb.ok()) return kb.status();

  // Deep structural validation of the final object: catches payloads that
  // pass CRC and decode (e.g. a re-signed snapshot with unsorted adjacency,
  // duplicate titles, or a stale persisted derived structure) before they
  // can corrupt query results or walk the binary searches into UB.
  SQE_RETURN_IF_ERROR(kb.value().Validate());
  return kb;
}

Result<KnowledgeBase> KnowledgeBase::FromSnapshotString(std::string image,
                                                        io::LoadMode mode) {
  auto reader =
      io::SnapshotReader::Open(std::move(image), io::kKbSnapshotMagic);
  if (!reader.ok()) return reader.status();
  return FromReader(reader.value(), mode);
}

Result<KnowledgeBase> KnowledgeBase::FromSnapshotFile(const std::string& path,
                                                      io::LoadMode mode) {
  if (mode == io::LoadMode::kZeroCopy) {
    auto reader = io::SnapshotReader::OpenMapped(path, io::kKbSnapshotMagic);
    if (!reader.ok()) return reader.status();
    return FromReader(reader.value(), mode);
  }
  auto image = io::ReadFileToString(path);
  if (!image.ok()) return image.status();
  return FromSnapshotString(std::move(image).value(), mode);
}

}  // namespace sqe::kb
