#include "kb/knowledge_base.h"

#include <algorithm>

#include "common/string_util.h"
#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"

namespace sqe::kb {

namespace {

template <typename T>
bool SortedContains(std::span<const T> sorted, T value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

void EncodeTitles(std::string* out, const std::vector<std::string>& titles) {
  io::PutVarint64(out, titles.size());
  for (const std::string& t : titles) io::PutLengthPrefixed(out, t);
}

bool DecodeTitles(std::string_view in, std::vector<std::string>* titles) {
  uint64_t n;
  if (!io::GetVarint64(&in, &n)) return false;
  titles->clear();
  titles->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view t;
    if (!io::GetLengthPrefixed(&in, &t)) return false;
    titles->emplace_back(t);
  }
  return in.empty();
}

// CSR encoding: varint node count, then per node the delta-coded sorted
// adjacency list (varint degree, varint gaps).
template <typename T>
void EncodeCsr(std::string* out, const std::vector<uint64_t>& offsets,
               const std::vector<T>& targets) {
  const size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  io::PutVarint64(out, n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t begin = offsets[i], end = offsets[i + 1];
    io::PutVarint64(out, end - begin);
    uint64_t prev = 0;
    for (uint64_t j = begin; j < end; ++j) {
      uint64_t v = targets[j];
      io::PutVarint64(out, v - prev);  // gaps (first is absolute)
      prev = v;
    }
  }
}

template <typename T>
bool DecodeCsr(std::string_view in, std::vector<uint64_t>* offsets,
               std::vector<T>* targets) {
  uint64_t n;
  if (!io::GetVarint64(&in, &n)) return false;
  offsets->assign(n + 1, 0);
  targets->clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t degree;
    if (!io::GetVarint64(&in, &degree)) return false;
    uint64_t prev = 0;
    for (uint64_t j = 0; j < degree; ++j) {
      uint64_t gap;
      if (!io::GetVarint64(&in, &gap)) return false;
      prev += gap;
      if (prev > UINT32_MAX) return false;
      targets->push_back(static_cast<T>(prev));
    }
    (*offsets)[i + 1] = (*offsets)[i] + degree;
  }
  return in.empty();
}
}  // namespace

ArticleId KnowledgeBase::FindArticle(std::string_view title) const {
  auto it = article_by_title_.find(title);
  return it == article_by_title_.end() ? kInvalidArticle : it->second;
}

CategoryId KnowledgeBase::FindCategory(std::string_view title) const {
  auto it = category_by_title_.find(title);
  return it == category_by_title_.end() ? kInvalidCategory : it->second;
}

bool KnowledgeBase::HasLink(ArticleId from, ArticleId to) const {
  return SortedContains(OutLinks(from), to);
}

bool KnowledgeBase::ReciprocallyLinked(ArticleId a, ArticleId b) const {
  return SortedContains(ReciprocalLinks(a), b);
}

void KnowledgeBase::BuildReciprocalLinks() {
  const size_t n = article_titles_.size();
  reciprocal_offsets_.assign(n + 1, 0);
  reciprocal_targets_.clear();
  for (size_t a = 0; a < n; ++a) {
    std::span<const ArticleId> out = OutLinks(static_cast<ArticleId>(a));
    std::span<const ArticleId> in = InLinks(static_cast<ArticleId>(a));
    // Sorted intersection: b is a mutual neighbor iff a->b and b->a exist.
    size_t i = 0, j = 0;
    while (i < out.size() && j < in.size()) {
      if (out[i] < in[j]) {
        ++i;
      } else if (in[j] < out[i]) {
        ++j;
      } else {
        reciprocal_targets_.push_back(out[i]);
        ++i;
        ++j;
      }
    }
    reciprocal_offsets_[a + 1] = reciprocal_targets_.size();
  }
}

namespace {
// Structural check for one CSR relation: offsets shaped N+1 starting at 0,
// monotone, ending at |targets|; every target id in range; every adjacency
// list strictly ascending (sorted, no duplicates — binary-search lookups
// and two-pointer intersections both rely on this).
template <typename T>
Status ValidateCsr(std::string_view name,
                   const std::vector<uint64_t>& offsets,
                   const std::vector<T>& targets, size_t num_nodes,
                   size_t target_space) {
  if (offsets.empty()) {
    if (num_nodes == 0 && targets.empty()) return Status::OK();
    return Status::Corruption(StrFormat("%s: offsets empty but %zu nodes",
                                        std::string(name).c_str(), num_nodes));
  }
  if (offsets.size() != num_nodes + 1) {
    return Status::Corruption(
        StrFormat("%s: offsets size %zu != num nodes %zu + 1",
                  std::string(name).c_str(), offsets.size(), num_nodes));
  }
  if (offsets.front() != 0) {
    return Status::Corruption(StrFormat("%s: offsets[0] = %llu, want 0",
                                        std::string(name).c_str(),
                                        (unsigned long long)offsets.front()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption(StrFormat(
          "%s: offsets not monotone at node %zu (%llu > %llu)",
          std::string(name).c_str(), i, (unsigned long long)offsets[i],
          (unsigned long long)offsets[i + 1]));
    }
  }
  if (offsets.back() != targets.size()) {
    return Status::Corruption(StrFormat(
        "%s: offsets end at %llu but %zu targets",
        std::string(name).c_str(), (unsigned long long)offsets.back(),
        targets.size()));
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    for (uint64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
      if (targets[j] >= target_space) {
        return Status::Corruption(StrFormat(
            "%s: node %zu target %u out of range (space %zu) at position %llu",
            std::string(name).c_str(), i, (unsigned)targets[j], target_space,
            (unsigned long long)j));
      }
      if (j > offsets[i] && targets[j - 1] >= targets[j]) {
        return Status::Corruption(StrFormat(
            "%s: adjacency of node %zu not strictly ascending at position "
            "%llu (%u >= %u)",
            std::string(name).c_str(), i, (unsigned long long)j,
            (unsigned)targets[j - 1], (unsigned)targets[j]));
      }
    }
  }
  return Status::OK();
}

// Multiset equality between a stored reverse CSR and the reverse computed
// from the forward relation. Detects a reverse CSR that drifted from its
// source (e.g. a stale or tampered derived structure).
template <typename Src, typename Dst>
Status ValidateReverseCsr(std::string_view name,
                          const std::vector<uint64_t>& fwd_offsets,
                          const std::vector<Dst>& fwd_targets,
                          const std::vector<uint64_t>& rev_offsets,
                          const std::vector<Src>& rev_sources,
                          size_t num_targets) {
  std::vector<uint64_t> expect_deg(num_targets, 0);
  for (Dst t : fwd_targets) expect_deg[t]++;
  for (size_t t = 0; t < num_targets; ++t) {
    uint64_t got = rev_offsets[t + 1] - rev_offsets[t];
    if (got != expect_deg[t]) {
      return Status::Corruption(StrFormat(
          "%s: node %zu has %llu reverse edges, forward relation implies "
          "%llu",
          std::string(name).c_str(), t, (unsigned long long)got,
          (unsigned long long)expect_deg[t]));
    }
  }
  // Degrees match; rebuild the reverse adjacency in O(E) by scanning the
  // forward edges in ascending source order (so each target's rebuilt
  // source list comes out ascending) and compare element-wise with the
  // stored CSR, which ValidateCsr already proved is sorted. Equal sorted
  // sequences <=> equal edge multisets, without a per-edge binary search.
  std::vector<uint64_t> cursor(rev_offsets.begin(), rev_offsets.end() - 1);
  std::vector<Src> rebuilt(rev_sources.size());
  const size_t n = fwd_offsets.empty() ? 0 : fwd_offsets.size() - 1;
  for (size_t s = 0; s < n; ++s) {
    for (uint64_t j = fwd_offsets[s]; j < fwd_offsets[s + 1]; ++j) {
      rebuilt[cursor[fwd_targets[j]]++] = static_cast<Src>(s);
    }
  }
  for (size_t t = 0; t < num_targets; ++t) {
    for (uint64_t j = rev_offsets[t]; j < rev_offsets[t + 1]; ++j) {
      if (rev_sources[j] != rebuilt[j]) {
        return Status::Corruption(StrFormat(
            "%s: reverse edge %zu<-%u has no forward counterpart",
            std::string(name).c_str(), t, (unsigned)rev_sources[j]));
      }
    }
  }
  return Status::OK();
}
}  // namespace

Status KnowledgeBase::Validate() const {
  const size_t na = article_titles_.size();
  const size_t nc = category_titles_.size();

  SQE_RETURN_IF_ERROR(ValidateCsr("article_links", article_link_offsets_,
                                  article_link_targets_, na, na));
  SQE_RETURN_IF_ERROR(ValidateCsr("article_inlinks", article_inlink_offsets_,
                                  article_inlink_sources_, na, na));
  SQE_RETURN_IF_ERROR(ValidateCsr("memberships", membership_offsets_,
                                  membership_targets_, na, nc));
  SQE_RETURN_IF_ERROR(ValidateCsr("category_articles", cat_article_offsets_,
                                  cat_article_targets_, nc, na));
  SQE_RETURN_IF_ERROR(ValidateCsr("category_parents", cat_parent_offsets_,
                                  cat_parent_targets_, nc, nc));
  SQE_RETURN_IF_ERROR(ValidateCsr("category_children", cat_child_offsets_,
                                  cat_child_targets_, nc, nc));
  SQE_RETURN_IF_ERROR(ValidateCsr("reciprocal_links", reciprocal_offsets_,
                                  reciprocal_targets_, na, na));

  // Reverse relations must mirror their forward CSRs edge for edge.
  SQE_RETURN_IF_ERROR((ValidateReverseCsr<ArticleId, ArticleId>(
      "article_inlinks", article_link_offsets_, article_link_targets_,
      article_inlink_offsets_, article_inlink_sources_, na)));
  SQE_RETURN_IF_ERROR((ValidateReverseCsr<ArticleId, CategoryId>(
      "category_articles", membership_offsets_, membership_targets_,
      cat_article_offsets_, cat_article_targets_, nc)));
  SQE_RETURN_IF_ERROR((ValidateReverseCsr<CategoryId, CategoryId>(
      "category_children", cat_parent_offsets_, cat_parent_targets_,
      cat_child_offsets_, cat_child_targets_, nc)));

  // Reciprocal CSR symmetry: each article's list must equal the sorted
  // intersection of its out- and in-links (the "doubly linked" pairs the
  // motif finder scans). Recomputing the two-pointer merge is O(E).
  for (size_t a = 0; a < na; ++a) {
    std::span<const ArticleId> out = OutLinks(static_cast<ArticleId>(a));
    std::span<const ArticleId> in = InLinks(static_cast<ArticleId>(a));
    std::span<const ArticleId> rec =
        ReciprocalLinks(static_cast<ArticleId>(a));
    size_t i = 0, j = 0, r = 0;
    while (i < out.size() && j < in.size()) {
      if (out[i] < in[j]) {
        ++i;
      } else if (in[j] < out[i]) {
        ++j;
      } else {
        if (r >= rec.size() || rec[r] != out[i]) {
          return Status::Corruption(StrFormat(
              "reciprocal_links: article %zu missing mutual neighbor %u "
              "(asymmetric reciprocal CSR)",
              a, (unsigned)out[i]));
        }
        ++i;
        ++j;
        ++r;
      }
    }
    if (r != rec.size()) {
      return Status::Corruption(StrFormat(
          "reciprocal_links: article %zu lists %u which is not a mutual "
          "out/in neighbor",
          a, (unsigned)rec[r]));
    }
  }

  // Title maps must be a bijection onto the id space (duplicate titles
  // collapse map entries; stale maps point at the wrong ids).
  if (article_by_title_.size() != na) {
    return Status::Corruption(
        StrFormat("article title map has %zu entries for %zu articles "
                  "(duplicate or missing titles)",
                  article_by_title_.size(), na));
  }
  if (category_by_title_.size() != nc) {
    return Status::Corruption(
        StrFormat("category title map has %zu entries for %zu categories "
                  "(duplicate or missing titles)",
                  category_by_title_.size(), nc));
  }
  for (size_t i = 0; i < na; ++i) {
    if (FindArticle(article_titles_[i]) != static_cast<ArticleId>(i)) {
      return Status::Corruption(
          StrFormat("article title map does not round-trip id %zu", i));
    }
  }
  for (size_t i = 0; i < nc; ++i) {
    if (FindCategory(category_titles_[i]) != static_cast<CategoryId>(i)) {
      return Status::Corruption(
          StrFormat("category title map does not round-trip id %zu", i));
    }
  }
  return Status::OK();
}

bool KnowledgeBase::HasMembership(ArticleId article,
                                  CategoryId category) const {
  return SortedContains(CategoriesOf(article), category);
}

bool KnowledgeBase::HasCategoryLink(CategoryId child,
                                    CategoryId parent) const {
  return SortedContains(ParentCategories(child), parent);
}

void KnowledgeBase::RebuildTitleMaps() {
  article_by_title_.clear();
  article_by_title_.reserve(article_titles_.size());
  for (size_t i = 0; i < article_titles_.size(); ++i) {
    article_by_title_.emplace(article_titles_[i],
                              static_cast<ArticleId>(i));
  }
  category_by_title_.clear();
  category_by_title_.reserve(category_titles_.size());
  for (size_t i = 0; i < category_titles_.size(); ++i) {
    category_by_title_.emplace(category_titles_[i],
                               static_cast<CategoryId>(i));
  }
}

std::string KnowledgeBase::SerializeToString() const {
  io::SnapshotWriter writer(io::kKbSnapshotMagic);
  std::string block;

  EncodeTitles(&block, article_titles_);
  writer.AddBlock("article_titles", std::move(block));
  block.clear();

  EncodeTitles(&block, category_titles_);
  writer.AddBlock("category_titles", std::move(block));
  block.clear();

  EncodeCsr(&block, article_link_offsets_, article_link_targets_);
  writer.AddBlock("article_links", std::move(block));
  block.clear();

  EncodeCsr(&block, membership_offsets_, membership_targets_);
  writer.AddBlock("memberships", std::move(block));
  block.clear();

  EncodeCsr(&block, cat_parent_offsets_, cat_parent_targets_);
  writer.AddBlock("category_links", std::move(block));

  return writer.Serialize();
}

Status KnowledgeBase::SaveToFile(const std::string& path) const {
  return io::WriteStringToFile(path, SerializeToString());
}

namespace {
// Builds the reverse of a CSR relation (targets become sources).
template <typename Src, typename Dst>
void BuildReverseCsr(size_t num_targets,
                     const std::vector<uint64_t>& fwd_offsets,
                     const std::vector<Dst>& fwd_targets,
                     std::vector<uint64_t>* rev_offsets,
                     std::vector<Src>* rev_sources) {
  rev_offsets->assign(num_targets + 1, 0);
  for (Dst t : fwd_targets) (*rev_offsets)[t + 1]++;
  for (size_t i = 1; i < rev_offsets->size(); ++i) {
    (*rev_offsets)[i] += (*rev_offsets)[i - 1];
  }
  rev_sources->assign(fwd_targets.size(), 0);
  std::vector<uint64_t> cursor(rev_offsets->begin(), rev_offsets->end() - 1);
  const size_t n = fwd_offsets.size() - 1;
  for (size_t s = 0; s < n; ++s) {
    for (uint64_t j = fwd_offsets[s]; j < fwd_offsets[s + 1]; ++j) {
      Dst t = fwd_targets[j];
      (*rev_sources)[cursor[t]++] = static_cast<Src>(s);
    }
  }
  // Sources come out sorted already because we scan s ascending.
}
}  // namespace

Result<KnowledgeBase> KnowledgeBase::FromSnapshotString(std::string image) {
  auto reader_or = io::SnapshotReader::Open(std::move(image), io::kKbSnapshotMagic);
  if (!reader_or.ok()) return reader_or.status();
  const io::SnapshotReader& reader = reader_or.value();

  KnowledgeBase kb;
  auto require = [&](std::string_view name) -> Result<std::string_view> {
    auto block = reader.GetBlock(name);
    if (!block.ok()) {
      return Status::Corruption("KB snapshot missing block: " +
                                std::string(name));
    }
    return block;
  };

  SQE_ASSIGN_OR_RETURN(std::string_view titles_block,
                       require("article_titles"));
  if (!DecodeTitles(titles_block, &kb.article_titles_)) {
    return Status::Corruption("bad article_titles block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view cat_titles_block,
                       require("category_titles"));
  if (!DecodeTitles(cat_titles_block, &kb.category_titles_)) {
    return Status::Corruption("bad category_titles block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view links_block, require("article_links"));
  if (!DecodeCsr(links_block, &kb.article_link_offsets_,
                 &kb.article_link_targets_)) {
    return Status::Corruption("bad article_links block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view memb_block, require("memberships"));
  if (!DecodeCsr(memb_block, &kb.membership_offsets_,
                 &kb.membership_targets_)) {
    return Status::Corruption("bad memberships block");
  }
  SQE_ASSIGN_OR_RETURN(std::string_view cat_block, require("category_links"));
  if (!DecodeCsr(cat_block, &kb.cat_parent_offsets_,
                 &kb.cat_parent_targets_)) {
    return Status::Corruption("bad category_links block");
  }

  // Validate CSR shapes against node counts.
  if (kb.article_link_offsets_.size() != kb.article_titles_.size() + 1 ||
      kb.membership_offsets_.size() != kb.article_titles_.size() + 1 ||
      kb.cat_parent_offsets_.size() != kb.category_titles_.size() + 1) {
    return Status::Corruption("KB snapshot adjacency/node count mismatch");
  }
  for (ArticleId t : kb.article_link_targets_) {
    if (t >= kb.article_titles_.size()) {
      return Status::Corruption("article link target out of range");
    }
  }
  for (CategoryId t : kb.membership_targets_) {
    if (t >= kb.category_titles_.size()) {
      return Status::Corruption("membership target out of range");
    }
  }
  for (CategoryId t : kb.cat_parent_targets_) {
    if (t >= kb.category_titles_.size()) {
      return Status::Corruption("category link target out of range");
    }
  }

  // Derived (reverse) adjacency is rebuilt rather than stored.
  BuildReverseCsr<ArticleId, ArticleId>(
      kb.article_titles_.size(), kb.article_link_offsets_,
      kb.article_link_targets_, &kb.article_inlink_offsets_,
      &kb.article_inlink_sources_);
  BuildReverseCsr<ArticleId, CategoryId>(
      kb.category_titles_.size(), kb.membership_offsets_,
      kb.membership_targets_, &kb.cat_article_offsets_,
      &kb.cat_article_targets_);
  BuildReverseCsr<CategoryId, CategoryId>(
      kb.category_titles_.size(), kb.cat_parent_offsets_,
      kb.cat_parent_targets_, &kb.cat_child_offsets_, &kb.cat_child_targets_);

  kb.BuildReciprocalLinks();
  kb.RebuildTitleMaps();

  // Deep structural validation of the final object: catches payloads that
  // pass CRC and decode (e.g. a re-signed snapshot with unsorted adjacency
  // or duplicate titles) before they can corrupt query results or walk the
  // binary searches into UB.
  SQE_RETURN_IF_ERROR(kb.Validate());
  return kb;
}

Result<KnowledgeBase> KnowledgeBase::FromSnapshotFile(
    const std::string& path) {
  auto image = io::ReadFileToString(path);
  if (!image.ok()) return image.status();
  return FromSnapshotString(std::move(image).value());
}

}  // namespace sqe::kb
