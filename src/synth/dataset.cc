#include "synth/dataset.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sqe::synth {

Dataset BuildDataset(const World& world, const DatasetSpec& spec) {
  Dataset ds;
  ds.name = spec.name;
  ds.world = &world;
  ds.retrieval_mu = spec.retrieval_mu;

  Timer timer;
  ds.collection = GenerateCollection(world, spec.collection);

  // Index the collection through the standard analyzer.
  index::IndexBuilder builder;
  for (const GeneratedDoc& doc : ds.collection.docs) {
    builder.AddDocument(doc.external_id, ds.analyzer().Analyze(doc.text));
  }
  ds.index = std::move(builder).Build();

  ds.query_set = GenerateQueries(world, ds.collection, spec.queries);

  // Surface forms: canonical titles dominate; colloquial aliases are the
  // noisy tail that makes automatic linking imperfect.
  *ds.surface_forms =
      entity::SurfaceFormDictionary::FromKbTitles(world.kb, ds.analyzer());
  // Re-add titles with a strong prior so aliases rarely outweigh them.
  for (const Concept& cpt : world.concepts) {
    std::vector<std::string> title_tokens =
        ds.analyzer().Analyze(world.kb.ArticleTitle(cpt.article));
    if (!title_tokens.empty()) {
      ds.surface_forms->Add(title_tokens, cpt.article, 9.0);
    }
    for (const std::string& alias : cpt.colloquial_terms) {
      std::vector<std::string> alias_tokens = ds.analyzer().Analyze(alias);
      if (!alias_tokens.empty()) {
        ds.surface_forms->Add(alias_tokens, cpt.article, 1.0);
      }
    }
  }
  // Query aliases ("common names", mined from anchor text in the real
  // system). Earlier concepts are more popular: when an alias is shared,
  // the popular holder dominates its commonness, so queries about the
  // obscure holder link to the wrong article — the linker's ~20% error.
  {
    std::unordered_map<std::string, size_t> holders_seen;
    for (const Concept& cpt : world.concepts) {
      std::vector<std::string> alias_tokens =
          ds.analyzer().Analyze(cpt.query_alias);
      if (alias_tokens.empty()) continue;
      size_t seen = holders_seen[cpt.query_alias]++;
      ds.surface_forms->Add(alias_tokens, cpt.article,
                            seen == 0 ? 6.0 : 1.0);
    }
  }
  ds.surface_forms->Finalize();
  ds.linker = std::make_unique<entity::EntityLinker>(ds.surface_forms.get(),
                                                     ds.analyzer_holder.get());

  LogInfo(StrFormat("dataset '%s': %zu docs, %zu queries, built in %.1fs",
                    ds.name.c_str(), ds.collection.docs.size(),
                    ds.query_set.queries.size(), timer.ElapsedSeconds()));
  return ds;
}

WorldOptions PaperWorldOptions() {
  WorldOptions options;
  options.seed = 20170514;  // ExploreDB'17 presentation date
  options.num_topics = 48;
  options.clusters_per_topic = 8;
  return options;
}

namespace {
// Half the world's concepts belong to the ImageCLEF-like domain; the CHiC
// collections span everything (cultural heritage is broad).
uint32_t HalfWorldConceptBoundary() {
  // With 48 topics x 8 clusters x ~10 concepts the boundary is about half
  // of ~3840; the exact value only needs to be stable, not exact.
  return 1920;
}
}  // namespace

DatasetSpec ImageClefSpec() {
  DatasetSpec spec;
  spec.name = "ImageCLEF-like";
  spec.collection.seed = 1101;
  spec.collection.num_docs = 20000;
  spec.collection.concept_min = 0;
  spec.collection.concept_max = HalfWorldConceptBoundary();
  spec.queries.seed = 2101;
  spec.queries.num_queries = 50;
  spec.queries.num_zero_relevant = 0;
  spec.queries.p_triangular_relevant = 1.0;
  spec.queries.p_square_relevant = 0.35;
  spec.collection.p_subject_named = 0.25;
  spec.queries.concept_min = 0;
  spec.queries.concept_max = HalfWorldConceptBoundary();
  spec.retrieval_mu = 300.0;
  return spec;
}

DatasetSpec Chic2012Spec() {
  DatasetSpec spec;
  spec.name = "CHiC-2012-like";
  spec.collection.seed = 1201;
  spec.collection.num_docs = 60000;
  // Exclude ~1/60th of concepts from coverage so zero-relevant intents
  // exist, as in the real collection.
  spec.collection.excluded_concept_modulo = 60;
  spec.collection.excluded_concept_residue = 7;
  spec.queries.seed = 2201;
  spec.queries.num_queries = 50;
  spec.queries.num_zero_relevant = 14;
  spec.queries.p_triangular_relevant = 0.45;
  spec.queries.p_square_relevant = 0.20;
  spec.collection.p_subject_named = 0.25;
  // Cultural-heritage queries are vaguer: canonical names appear less.
  spec.queries.p_include_canonical = 0.45;
  spec.queries.p_topic_term = 0.45;
  spec.retrieval_mu = 300.0;
  return spec;
}

DatasetSpec Chic2013Spec() {
  DatasetSpec spec;
  spec.name = "CHiC-2013-like";
  spec.collection.seed = 1301;
  spec.collection.num_docs = 60000;
  spec.collection.excluded_concept_modulo = 60;
  spec.collection.excluded_concept_residue = 13;
  spec.queries.seed = 2301;
  spec.queries.num_queries = 50;
  spec.queries.num_zero_relevant = 1;
  spec.queries.p_triangular_relevant = 0.70;
  spec.queries.p_square_relevant = 0.40;
  spec.collection.p_subject_named = 0.25;
  spec.queries.p_include_canonical = 0.50;
  spec.retrieval_mu = 300.0;
  return spec;
}

WorldOptions TinyWorldOptions() {
  WorldOptions options;
  options.seed = 7;
  options.num_topics = 4;
  options.clusters_per_topic = 4;
  options.global_noise_terms = 200;
  return options;
}

DatasetSpec TinyDatasetSpec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.collection.seed = 31;
  spec.collection.num_docs = 1500;
  spec.queries.seed = 32;
  spec.queries.num_queries = 12;
  spec.retrieval_mu = 300.0;
  return spec;
}

}  // namespace sqe::synth
