#include "synth/world.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"
#include "kb/kb_builder.h"
#include "synth/wordgen.h"

namespace sqe::synth {

namespace {

// Capitalizes the first letter (titles look like "Zorbak Matik").
std::string Capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

std::string TitleOf(const std::vector<std::string>& name_terms) {
  std::string title;
  for (size_t i = 0; i < name_terms.size(); ++i) {
    if (i > 0) title += ' ';
    title += Capitalize(name_terms[i]);
  }
  return title;
}

// A category profile: which of the cluster's categories a group's concepts
// belong to.
struct GroupProfile {
  std::vector<kb::CategoryId> categories;  // sorted
  bool contains_parent = false;
};

}  // namespace

uint32_t World::ConceptOf(kb::ArticleId article) const {
  if (article >= concept_of_article_.size()) return UINT32_MAX;
  return concept_of_article_[article];
}

World World::Generate(const WorldOptions& options) {
  SQE_CHECK(options.num_topics > 0 && options.clusters_per_topic > 0);
  SQE_CHECK(options.min_concepts_per_cluster >= 4);
  SQE_CHECK(options.max_concepts_per_cluster >=
            options.min_concepts_per_cluster);

  World world;
  Rng rng(options.seed);
  WordGenerator words(options.seed ^ 0x5EEDF00DULL);
  kb::KbBuilder builder;

  // ---- vocabularies ---------------------------------------------------------
  world.noise_terms = words.NextWords(options.global_noise_terms);
  world.foreign_noise_terms = words.NextWords(options.global_noise_terms / 2);
  world.topic_terms.resize(options.num_topics);
  world.colloquial_pools.resize(options.num_topics);
  world.foreign_topic_terms.resize(options.num_topics);
  for (size_t t = 0; t < options.num_topics; ++t) {
    world.topic_terms[t] = words.NextWords(options.topic_terms_per_topic);
    world.colloquial_pools[t] =
        words.NextWords(options.colloquial_pool_per_topic);
    world.foreign_topic_terms[t] =
        words.NextWords(options.topic_terms_per_topic / 2);
  }

  // ---- topics, clusters, categories, groups, concepts -----------------------
  struct GroupInfo {
    GroupProfile profile;
    std::vector<uint32_t> members;  // concept indices
    uint32_t cluster = 0;
  };
  std::vector<GroupInfo> groups;
  std::vector<std::vector<uint32_t>> clusters;  // global cluster -> concepts

  for (uint32_t topic = 0; topic < options.num_topics; ++topic) {
    kb::CategoryId root =
        builder.AddCategory("Category:" + Capitalize(words.NextWord()));
    std::vector<uint32_t> topic_concepts_so_far;

    for (uint32_t c = 0; c < options.clusters_per_topic; ++c) {
      const uint32_t cluster_index = static_cast<uint32_t>(clusters.size());
      clusters.emplace_back();

      kb::CategoryId parent =
          builder.AddCategory("Category:" + Capitalize(words.NextWord()));
      builder.AddCategoryLink(parent, root);

      const size_t num_leaves =
          options.min_leaf_categories +
          rng.NextBounded(options.max_leaf_categories -
                          options.min_leaf_categories + 1);
      std::vector<kb::CategoryId> leaves;
      for (size_t l = 0; l < num_leaves; ++l) {
        kb::CategoryId leaf =
            builder.AddCategory("Category:" + Capitalize(words.NextWord()));
        builder.AddCategoryLink(leaf, parent);
        leaves.push_back(leaf);
      }

      // Group profiles: {leaf_i} for each leaf, one {leaf_0, parent}, one
      // {parent}. Same-profile pairs carry triangles; leaf-profile vs
      // parent-containing-profile pairs carry squares.
      const uint32_t first_group = static_cast<uint32_t>(groups.size());
      for (kb::CategoryId leaf : leaves) {
        GroupInfo g;
        g.profile.categories = {leaf};
        g.cluster = cluster_index;
        groups.push_back(std::move(g));
      }
      {
        GroupInfo g;
        g.profile.categories = {leaves[0], parent};
        std::sort(g.profile.categories.begin(), g.profile.categories.end());
        g.profile.contains_parent = true;
        g.cluster = cluster_index;
        groups.push_back(std::move(g));
      }
      {
        GroupInfo g;
        g.profile.categories = {parent};
        g.profile.contains_parent = true;
        g.cluster = cluster_index;
        groups.push_back(std::move(g));
      }
      const uint32_t num_groups =
          static_cast<uint32_t>(groups.size()) - first_group;

      const size_t num_concepts =
          options.min_concepts_per_cluster +
          rng.NextBounded(options.max_concepts_per_cluster -
                          options.min_concepts_per_cluster + 1);
      for (size_t i = 0; i < num_concepts; ++i) {
        Concept cpt;
        cpt.topic = topic;
        cpt.cluster = cluster_index;
        // Round-robin keeps every group populated (>=2 members for the
        // common cluster sizes), so triangular partners exist.
        cpt.group = first_group + static_cast<uint32_t>(i) % num_groups;

        const size_t name_len = rng.NextBool(options.p_two_word_title) ? 2 : 1;
        cpt.name_terms = words.NextWords(name_len);
        cpt.foreign_name_terms = words.NextWords(name_len);
        // Query alias: fresh word, or a collision with a more popular
        // same-topic concept's alias.
        const auto& topic_so_far = topic_concepts_so_far;
        if (!topic_so_far.empty() && rng.NextBool(options.p_alias_shared)) {
          cpt.query_alias =
              world.concepts[topic_so_far[rng.NextBounded(topic_so_far.size())]]
                  .query_alias;
        } else {
          cpt.query_alias = words.NextWord();
        }
        for (size_t j = 0; j < options.colloquial_terms_per_concept; ++j) {
          const auto& pool = world.colloquial_pools[topic];
          cpt.colloquial_terms.push_back(
              pool[rng.NextBounded(pool.size())]);
        }

        cpt.article = builder.AddArticle(TitleOf(cpt.name_terms));
        for (kb::CategoryId cat : groups[cpt.group].profile.categories) {
          builder.AddMembership(cpt.article, cat);
        }

        const uint32_t concept_index =
            static_cast<uint32_t>(world.concepts.size());
        groups[cpt.group].members.push_back(concept_index);
        clusters[cluster_index].push_back(concept_index);
        topic_concepts_so_far.push_back(concept_index);
        world.concepts.push_back(std::move(cpt));
      }
    }
  }

  // ---- links -----------------------------------------------------------------
  world.square_partners.resize(world.concepts.size());
  auto sample_partner = [&](const std::vector<uint32_t>& candidates,
                            uint32_t self) -> uint32_t {
    if (candidates.empty()) return UINT32_MAX;
    for (int attempt = 0; attempt < 8; ++attempt) {
      uint32_t pick = candidates[rng.NextBounded(candidates.size())];
      if (pick != self) return pick;
    }
    return UINT32_MAX;
  };

  for (uint32_t ci = 0; ci < world.concepts.size(); ++ci) {
    const Concept& cpt = world.concepts[ci];
    const GroupInfo& my_group = groups[cpt.group];

    // Triangular carriers: same-group reciprocal partners.
    for (size_t j = 0; j < options.strong_partners; ++j) {
      uint32_t partner = sample_partner(my_group.members, ci);
      if (partner == UINT32_MAX) continue;
      builder.AddReciprocalLink(cpt.article,
                                world.concepts[partner].article);
    }

    // Square carriers: reciprocal partners in a related group of the same
    // cluster (leaf profile <-> parent-containing profile).
    std::vector<uint32_t> related_candidates;
    for (uint32_t gj = 0; gj < groups.size(); ++gj) {
      if (gj == cpt.group || groups[gj].cluster != cpt.cluster) {
        continue;
      }
      if (groups[gj].profile.contains_parent !=
          my_group.profile.contains_parent) {
        for (uint32_t m : groups[gj].members) {
          related_candidates.push_back(m);
        }
      }
    }
    for (size_t j = 0; j < options.square_partners; ++j) {
      uint32_t partner = sample_partner(related_candidates, ci);
      if (partner == UINT32_MAX) continue;
      builder.AddReciprocalLink(cpt.article,
                                world.concepts[partner].article);
      world.square_partners[ci].push_back(partner);
      world.square_partners[partner].push_back(ci);
    }

    // Motif-free reciprocal noise: same-topic, different cluster.
    for (size_t j = 0; j < options.noise_reciprocal_partners; ++j) {
      uint32_t other = static_cast<uint32_t>(
          rng.NextBounded(world.concepts.size()));
      if (other == ci) continue;
      if (world.concepts[other].topic == cpt.topic &&
          world.concepts[other].cluster != cpt.cluster) {
        builder.AddReciprocalLink(cpt.article,
                                  world.concepts[other].article);
      }
    }

    // One-way links (hyperlink noise; can never close a motif).
    for (size_t j = 0; j < options.one_way_links; ++j) {
      uint32_t other;
      if (rng.NextBool(options.p_cross_topic_link)) {
        other = static_cast<uint32_t>(rng.NextBounded(world.concepts.size()));
      } else {
        const auto& cluster_pool = clusters[cpt.cluster];
        other = rng.NextBool(0.5)
                    ? cluster_pool[rng.NextBounded(cluster_pool.size())]
                    : static_cast<uint32_t>(
                          rng.NextBounded(world.concepts.size()));
      }
      if (other != ci) {
        builder.AddArticleLink(cpt.article,
                               world.concepts[other].article);
      }
    }
  }

  // Spurious twins: a more popular same-topic concept, reciprocally
  // linked, whose category set is polluted with this concept's categories
  // so that it falsely satisfies the motif conditions.
  world.spurious_twin.assign(world.concepts.size(), UINT32_MAX);
  for (uint32_t ci = 0; ci < world.concepts.size(); ++ci) {
    const Concept& cpt = world.concepts[ci];
    // Up to two spurious twins, the second half as likely as the first.
    for (int round = 0; round < 2; ++round) {
      double p = round == 0 ? options.p_spurious_twin
                            : options.p_spurious_twin * 0.5;
      if (!rng.NextBool(p)) continue;
      // Sample a more popular (lower index) concept from the same topic
      // but a different cluster.
      uint32_t twin = UINT32_MAX;
      for (int attempt = 0; attempt < 16; ++attempt) {
        if (ci == 0) break;
        uint32_t candidate = static_cast<uint32_t>(rng.NextBounded(ci));
        if (world.concepts[candidate].topic == cpt.topic &&
            world.concepts[candidate].cluster != cpt.cluster) {
          twin = candidate;
          break;
        }
      }
      if (twin == UINT32_MAX) continue;
      builder.AddReciprocalLink(cpt.article, world.concepts[twin].article);
      for (kb::CategoryId cat : groups[cpt.group].profile.categories) {
        builder.AddMembership(world.concepts[twin].article, cat);
      }
      if (world.spurious_twin[ci] == UINT32_MAX) {
        world.spurious_twin[ci] = twin;
      }
    }
  }

  // Deduplicate square-partner ground truth.
  for (auto& partners : world.square_partners) {
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()),
                   partners.end());
  }

  // ---- finalize ----------------------------------------------------------------
  world.kb = std::move(builder).Build();
  world.group_members.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    world.group_members[g] = groups[g].members;
  }
  world.cluster_members = std::move(clusters);
  world.topic_members.resize(options.num_topics);
  for (uint32_t ci = 0; ci < world.concepts.size(); ++ci) {
    world.topic_members[world.concepts[ci].topic].push_back(ci);
  }
  world.concept_of_article_.assign(world.kb.NumArticles(), UINT32_MAX);
  for (uint32_t ci = 0; ci < world.concepts.size(); ++ci) {
    world.concept_of_article_[world.concepts[ci].article] = ci;
  }
  return world;
}

}  // namespace sqe::synth
