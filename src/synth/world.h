// The synthetic world model: a Wikipedia-like knowledge base with known
// semantic ground truth (DESIGN.md §3, substitution 1).
//
// Hierarchy:  topic → cluster → group → concept.
//
//  * Every topic owns a root category; every cluster a parent category with
//    2–4 leaf categories under it (subcategory edges leaf → parent → root).
//  * A *group* is a set of concepts sharing an identical category profile.
//    Profiles are one of: {leaf}, {leaf, parent}, {parent}. Reciprocal
//    links inside a group therefore close TRIANGULAR motifs (identical
//    category sets); reciprocal links across groups whose profiles are
//    related by a leaf→parent edge close SQUARE motifs; reciprocal links
//    between unrelated-leaf groups close no motif (structural noise), and
//    one-way links never do.
//  * Each concept has canonical name terms (its article title, emitted as a
//    collocation in documents) and colloquial terms drawn from a per-topic
//    shared pool — the "user vocabulary" that causes the vocabulary
//    mismatch SQE targets and the alias ambiguity that caps automatic
//    entity-linking precision near the paper's ~80%.
#ifndef SQE_SYNTH_WORLD_H_
#define SQE_SYNTH_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "kb/types.h"

namespace sqe::synth {

struct WorldOptions {
  uint64_t seed = 42;
  size_t num_topics = 24;
  size_t clusters_per_topic = 8;
  size_t min_concepts_per_cluster = 8;
  size_t max_concepts_per_cluster = 20;
  size_t min_leaf_categories = 2;
  size_t max_leaf_categories = 4;

  /// Name terms per concept: 1 or 2 (title length).
  double p_two_word_title = 0.4;
  /// Colloquial terms per concept, drawn from the topic pool.
  size_t colloquial_terms_per_concept = 3;
  size_t colloquial_pool_per_topic = 16;
  size_t topic_terms_per_topic = 40;
  size_t global_noise_terms = 1500;

  /// Reciprocal links to same-group partners (triangular carriers).
  size_t strong_partners = 3;
  /// Reciprocal links to related-group partners (square carriers).
  size_t square_partners = 8;
  /// Reciprocal links to unrelated concepts (motif-free noise).
  size_t noise_reciprocal_partners = 2;
  /// One-way links per concept (never produce motifs).
  size_t one_way_links = 6;
  /// Fraction of one-way links that cross topics.
  double p_cross_topic_link = 0.25;

  /// Probability a concept has a *spurious twin*: a reciprocal link to a
  /// more popular same-topic concept whose category set is polluted with
  /// this concept's categories. Mirrors Wikipedia's noisy categorization:
  /// the twin satisfies the motif conditions but is semantically off, so
  /// expansion features are not all genuine — the reason QL_X (features
  /// alone) underperforms and SQE stays below the ground-truth bound.
  double p_spurious_twin = 0.9;

  /// Probability a concept's query alias collides with (reuses) the alias
  /// of a more popular same-topic concept — the ambiguity that caps the
  /// automatic entity linker near the paper's ~80% precision.
  double p_alias_shared = 0.30;
};

/// A concept = one article plus its semantic ground truth.
struct Concept {
  kb::ArticleId article = kb::kInvalidArticle;
  uint32_t topic = 0;
  uint32_t cluster = 0;   // global cluster index
  uint32_t group = 0;     // global group index
  std::vector<std::string> name_terms;        // canonical; title words
  std::vector<std::string> colloquial_terms;  // user vocabulary
  /// The concept's name in the "other languages" of the collection —
  /// relevant documents written in them are unreachable by English queries
  /// (ImageCLEF metadata is only ~60% English).
  std::vector<std::string> foreign_name_terms;
  /// The user-language "common name": appears in queries and in the entity
  /// linker's surface-form dictionary (mined from anchors), but never in
  /// the collection itself. May be shared with a more popular concept.
  std::string query_alias;
};

/// The generated world: the KB graph plus everything the document/query
/// generators and the evaluation ground truth need.
class World {
 public:
  kb::KnowledgeBase kb;
  std::vector<Concept> concepts;

  /// Per-topic vocabularies.
  std::vector<std::vector<std::string>> topic_terms;
  std::vector<std::vector<std::string>> colloquial_pools;
  std::vector<std::string> noise_terms;
  /// Disjoint "foreign language" vocabularies for non-English documents.
  std::vector<std::vector<std::string>> foreign_topic_terms;
  std::vector<std::string> foreign_noise_terms;

  /// concept indices per group / per cluster / per topic.
  std::vector<std::vector<uint32_t>> group_members;
  std::vector<std::vector<uint32_t>> cluster_members;
  std::vector<std::vector<uint32_t>> topic_members;

  /// Square-partner ground truth: for each concept, the concepts it was
  /// deliberately reciprocally linked to across related groups.
  std::vector<std::vector<uint32_t>> square_partners;

  /// Spurious-twin ground truth: concept -> the popular same-topic concept
  /// that falsely satisfies motif conditions for it (or UINT32_MAX).
  std::vector<uint32_t> spurious_twin;

  /// Concept index of an article id, or UINT32_MAX for hub/noise articles.
  uint32_t ConceptOf(kb::ArticleId article) const;

  size_t NumConcepts() const { return concepts.size(); }

  /// Deterministic generation from options.seed.
  static World Generate(const WorldOptions& options);

 private:
  std::vector<uint32_t> concept_of_article_;
};

}  // namespace sqe::synth

#endif  // SQE_SYNTH_WORLD_H_
