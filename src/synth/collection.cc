#include "synth/collection.h"

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"

namespace sqe::synth {

namespace {

// Appends a title's terms as consecutive tokens (a collocation).
void EmitTerms(const std::vector<std::string>& terms, std::string* text) {
  for (const std::string& term : terms) {
    if (!text->empty()) text->push_back(' ');
    *text += term;
  }
}

void EmitWord(const std::string& word, std::string* text) {
  if (!text->empty()) text->push_back(' ');
  *text += word;
}

}  // namespace

void StreamCollection(const World& world, const CollectionOptions& options,
                      const std::function<void(GeneratedDoc, size_t)>& emit) {
  SQE_CHECK(world.NumConcepts() > 0);
  SQE_CHECK(options.min_doc_tokens >= 4);
  SQE_CHECK(options.max_doc_tokens >= options.min_doc_tokens);

  Rng rng(options.seed);
  const uint32_t lo = options.concept_min;
  const uint32_t hi = static_cast<uint32_t>(
      std::min<uint64_t>(options.concept_max, world.NumConcepts()));
  SQE_CHECK(lo < hi);
  ZipfSampler concept_sampler(hi - lo, options.concept_zipf_s);

  const std::vector<double> weights = {
      options.w_primary_title, options.w_related_title, options.w_mention,
      options.w_colloquial,    options.w_topic_term,    options.w_noise_term};

  const uint32_t mention_cap =
      lo + static_cast<uint32_t>(options.mentionable_fraction *
                                 static_cast<double>(hi - lo));
  auto is_mentionable = [&](uint32_t concept_index) {
    return concept_index < mention_cap;
  };
  auto is_excluded = [&](uint32_t concept_index) {
    return options.excluded_concept_modulo != 0 &&
           concept_index % options.excluded_concept_modulo ==
               options.excluded_concept_residue;
  };

  for (size_t d = 0; d < options.num_docs; ++d) {
    uint32_t primary;
    do {
      primary = lo + static_cast<uint32_t>(concept_sampler.Sample(rng));
    } while (is_excluded(primary));
    const Concept& cpt = world.concepts[primary];
    const bool english = rng.NextBool(options.p_english);

    // Cross-referenced related concepts: square partners only, and only
    // mentionable (popular) ones. Captions cross-reference adjacent,
    // well-known subjects — never their own near-duplicates and never the
    // obscure tail. This keeps a tail concept's title out of its partners'
    // documents, which is precisely what makes expansion necessary to
    // reach them.
    std::vector<uint32_t> related;
    for (uint32_t p : world.square_partners[primary]) {
      if (p != primary && is_mentionable(p)) related.push_back(p);
    }
    // Cross-reference mentions come from anywhere in the topic.
    const std::vector<uint32_t>& topic_pool =
        world.topic_members[cpt.topic];

    const size_t target_tokens =
        options.min_doc_tokens +
        rng.NextBounded(options.max_doc_tokens - options.min_doc_tokens + 1);

    GeneratedDoc doc;
    doc.primary_concept = primary;
    doc.english = english;
    doc.external_id = StrFormat("doc-%06zu", d);

    auto title_of = [&](const Concept& c) -> const std::vector<std::string>& {
      return english ? c.name_terms : c.foreign_name_terms;
    };

    // A named document mentions its subject exactly once up front; repeats
    // only come from the (rare) w_primary_title event, so subject tf ~= 1
    // and cross-reference mentions act as real distractors. Unnamed English
    // documents open with colloquial description instead.
    size_t tokens = 0;
    if (!english || rng.NextBool(options.p_subject_named)) {
      EmitTerms(title_of(cpt), &doc.text);
      tokens += title_of(cpt).size();
    } else {
      for (size_t i = 0; i < 2 && !cpt.colloquial_terms.empty(); ++i) {
        EmitWord(cpt.colloquial_terms[rng.NextBounded(
                     cpt.colloquial_terms.size())],
                 &doc.text);
        ++tokens;
      }
    }

    const auto& topic_vocab = english
                                  ? world.topic_terms[cpt.topic]
                                  : world.foreign_topic_terms[cpt.topic];
    const auto& noise_vocab =
        english ? world.noise_terms : world.foreign_noise_terms;

    while (tokens < target_tokens) {
      switch (rng.NextWeighted(weights)) {
        case 0: {  // primary title repeat
          EmitTerms(title_of(cpt), &doc.text);
          tokens += title_of(cpt).size();
          break;
        }
        case 1: {  // related concept title
          if (!related.empty()) {
            const Concept& r =
                world.concepts[related[rng.NextBounded(related.size())]];
            EmitTerms(title_of(r), &doc.text);
            tokens += title_of(r).size();
          }
          break;
        }
        case 2: {  // cross-reference mention of a random same-topic concept
          uint32_t pick = topic_pool[rng.NextBounded(topic_pool.size())];
          if (is_mentionable(pick)) {
            const Concept& m = world.concepts[pick];
            EmitTerms(title_of(m), &doc.text);
            tokens += title_of(m).size();
          }
          break;
        }
        case 3: {  // colloquial vocabulary of the primary (English only)
          if (english && !cpt.colloquial_terms.empty()) {
            EmitWord(cpt.colloquial_terms[rng.NextBounded(
                         cpt.colloquial_terms.size())],
                     &doc.text);
          } else {
            EmitWord(noise_vocab[rng.NextBounded(noise_vocab.size())],
                     &doc.text);
          }
          ++tokens;
          break;
        }
        case 4: {  // topic background
          EmitWord(topic_vocab[rng.NextBounded(topic_vocab.size())],
                   &doc.text);
          ++tokens;
          break;
        }
        default: {  // language-wide noise
          EmitWord(noise_vocab[rng.NextBounded(noise_vocab.size())],
                   &doc.text);
          ++tokens;
          break;
        }
      }
    }

    emit(std::move(doc), d);
  }
}

Collection GenerateCollection(const World& world,
                              const CollectionOptions& options) {
  Collection collection;
  collection.docs.reserve(options.num_docs);
  collection.docs_of_concept.resize(world.NumConcepts());
  StreamCollection(world, options, [&](GeneratedDoc doc, size_t /*d*/) {
    collection.docs_of_concept[doc.primary_concept].push_back(
        static_cast<uint32_t>(collection.docs.size()));
    collection.docs.push_back(std::move(doc));
  });
  return collection;
}

}  // namespace sqe::synth
