// Synthetic word generation: pronounceable, analyzer-stable pseudo-words.
//
// Every vocabulary item in the synthetic world (concept names, topic terms,
// noise terms) is built from consonant-vowel syllables. Words avoid
// suffixes the Porter stemmer rewrites, so a word equals its own stem and
// the document/query/title term spaces stay aligned by construction.
#ifndef SQE_SYNTH_WORDGEN_H_
#define SQE_SYNTH_WORDGEN_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"

namespace sqe::synth {

/// Generates globally unique pseudo-words from a seeded RNG.
class WordGenerator {
 public:
  explicit WordGenerator(uint64_t seed) : rng_(seed) {}

  /// A new word of 2–4 syllables, distinct from all previously returned.
  std::string NextWord();

  /// `n` distinct new words.
  std::vector<std::string> NextWords(size_t n);

  size_t NumGenerated() const { return used_.size(); }

 private:
  std::string MakeCandidate();

  Rng rng_;
  std::unordered_set<std::string> used_;
};

}  // namespace sqe::synth

#endif  // SQE_SYNTH_WORDGEN_H_
