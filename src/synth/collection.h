// Synthetic document collections (DESIGN.md §3, substitution 2).
//
// Documents mimic the paper's targets: short metadata texts (image captions
// / cultural-heritage records). Each document is *about* one primary
// concept; its text mixes the primary's canonical title (emitted as an
// adjacent collocation, so phrase operators work), related concepts'
// titles, the primary's colloquial vocabulary, topic background and global
// noise. Relevance ground truth is defined generatively from the primary
// concept, never from retrieval output.
#ifndef SQE_SYNTH_COLLECTION_H_
#define SQE_SYNTH_COLLECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "synth/world.h"

namespace sqe::synth {

struct CollectionOptions {
  uint64_t seed = 7;
  size_t num_docs = 20000;
  size_t min_doc_tokens = 10;
  size_t max_doc_tokens = 40;

  /// Fraction of documents written in English; the rest use the disjoint
  /// foreign vocabularies and are unreachable by English queries even
  /// though they remain relevant (ImageCLEF is ~60% English).
  double p_english = 0.6;

  /// Probability an English document explicitly *names* its subject with
  /// the canonical title. Unnamed documents describe it with colloquial
  /// vocabulary only — the document-side vocabulary mismatch that caps what
  /// title matching (QL_E and even SQE^UB) can reach, as in the paper's
  /// short-caption collections.
  double p_subject_named = 0.5;

  /// Emission-event mixture for the body after the leading subject mention
  /// (normalized internally). `w_mention` emits the title of a *random*
  /// same-topic concept — the cross-reference noise that turns otherwise
  /// irrelevant documents into distractors for title queries.
  double w_primary_title = 0.02;
  double w_related_title = 0.12;
  double w_mention = 0.30;
  double w_colloquial = 0.10;
  double w_topic_term = 0.28;
  double w_noise_term = 0.18;

  /// Zipf skew over concepts when picking a document's primary concept.
  double concept_zipf_s = 0.35;

  /// Only the most popular `mentionable_fraction` of the concept range (by
  /// Zipf rank) is ever cross-referenced by other documents — nobody cites
  /// the obscure tail. Queries about tail concepts therefore find their
  /// titles only in the concepts' own documents, which is the vocabulary
  /// gap SQE bridges through the tail concepts' popular partners.
  double mentionable_fraction = 0.6;

  /// Primary concepts are drawn from [concept_min, concept_max) — datasets
  /// covering different domains use different ranges of the shared world.
  uint32_t concept_min = 0;
  uint32_t concept_max = UINT32_MAX;

  /// Concepts whose index satisfies (index % modulo) == residue get no
  /// documents at all — used to create the zero-relevant queries CHiC has.
  /// modulo == 0 disables exclusion.
  size_t excluded_concept_modulo = 0;
  size_t excluded_concept_residue = 0;
};

/// One generated document.
struct GeneratedDoc {
  std::string external_id;
  uint32_t primary_concept = 0;
  bool english = true;
  std::string text;  // raw text; indexing runs the normal analyzer
};

/// A generated collection bound to a world.
struct Collection {
  std::vector<GeneratedDoc> docs;
  /// docs-per-concept histogram (ground truth for qrels construction).
  std::vector<std::vector<uint32_t>> docs_of_concept;  // concept -> doc ids
};

/// Deterministically generates a collection over `world`.
Collection GenerateCollection(const World& world,
                              const CollectionOptions& options);

/// Streaming form of GenerateCollection: `emit(doc, ordinal)` is invoked
/// once per document, in generation order, and nothing is retained between
/// calls — memory stays constant no matter how large `num_docs` is, which
/// is what makes multi-million-document corpora practical to index. The
/// Rng call sequence is identical to GenerateCollection's, so streamed
/// documents are byte-for-byte the documents GenerateCollection would
/// materialize (synth_test pins this equivalence).
void StreamCollection(const World& world, const CollectionOptions& options,
                      const std::function<void(GeneratedDoc, size_t)>& emit);

}  // namespace sqe::synth

#endif  // SQE_SYNTH_COLLECTION_H_
