#include "synth/query_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/macros.h"
#include "common/random.h"

namespace sqe::synth {

namespace {

std::string Capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

// Ground-truth related concepts of `c`: same-group members (triangular
// partners) then square partners, deduplicated, excluding c itself.
struct RelatedSets {
  std::vector<uint32_t> triangular;
  std::vector<uint32_t> square;
};

RelatedSets RelatedConceptsOf(const World& world, uint32_t c) {
  RelatedSets out;
  for (uint32_t m : world.group_members[world.concepts[c].group]) {
    if (m != c) out.triangular.push_back(m);
  }
  for (uint32_t m : world.square_partners[c]) {
    if (m != c &&
        std::find(out.triangular.begin(), out.triangular.end(), m) ==
            out.triangular.end()) {
      out.square.push_back(m);
    }
  }
  return out;
}

expansion::QueryGraph BuildGroundTruthGraph(const World& world, uint32_t c,
                                            const RelatedSets& related) {
  expansion::QueryGraph graph;
  graph.query_nodes.push_back(world.concepts[c].article);
  std::unordered_set<kb::CategoryId> cats;
  auto add_node = [&](uint32_t concept_index, uint32_t tri, uint32_t sq) {
    expansion::ExpansionNode node;
    node.article = world.concepts[concept_index].article;
    node.triangular_count = tri;
    node.square_count = sq;
    node.motif_count = tri + sq;
    graph.expansion_nodes.push_back(node);
    graph.total_motifs += node.motif_count;
    for (kb::CategoryId cat :
         world.kb.CategoriesOf(world.concepts[concept_index].article)) {
      cats.insert(cat);
    }
  };
  // Triangular partners sit much closer to the query node; the optimal
  // graph weights them far above square partners so that its precision
  // dominates every cutoff (they fill the small tops, squares the deep
  // ones), as the paper's SQE^UB does.
  for (uint32_t m : related.triangular) add_node(m, 6, 0);
  for (uint32_t m : related.square) add_node(m, 0, 1);
  std::sort(graph.expansion_nodes.begin(), graph.expansion_nodes.end(),
            [](const expansion::ExpansionNode& a,
               const expansion::ExpansionNode& b) {
              if (a.motif_count != b.motif_count) {
                return a.motif_count > b.motif_count;
              }
              return a.article < b.article;
            });
  graph.category_nodes.assign(cats.begin(), cats.end());
  std::sort(graph.category_nodes.begin(), graph.category_nodes.end());
  return graph;
}

}  // namespace

QuerySet GenerateQueries(const World& world, const Collection& collection,
                         const QueryGenOptions& options) {
  SQE_CHECK(options.num_queries >= options.num_zero_relevant);
  Rng rng(options.seed);

  const uint32_t lo = options.concept_min;
  const uint32_t hi = static_cast<uint32_t>(
      std::min<uint64_t>(options.concept_max, world.NumConcepts()));
  SQE_CHECK(lo < hi);

  // Split candidate intents into concepts with and without documents.
  // Among documented concepts, prefer "obscure" ones: few documents of
  // their own, well-covered partners (see QueryGenOptions).
  std::vector<uint32_t> with_docs, without_docs, obscure;
  for (uint32_t c = lo; c < hi; ++c) {
    if (collection.docs_of_concept[c].empty()) {
      without_docs.push_back(c);
      continue;
    }
    with_docs.push_back(c);
  }
  if (options.prefer_obscure_intents && !with_docs.empty()) {
    // Obscure = own coverage in the bottom quartile of documented concepts
    // AND partners covering at least `obscurity_ratio` times as much.
    std::vector<size_t> counts;
    counts.reserve(with_docs.size());
    for (uint32_t c : with_docs) {
      counts.push_back(collection.docs_of_concept[c].size());
    }
    std::sort(counts.begin(), counts.end());
    const size_t median_cap = counts[counts.size() / 2];
    const uint32_t mention_cap =
        lo + static_cast<uint32_t>(options.mentionable_fraction *
                                   static_cast<double>(hi - lo));
    for (uint32_t c : with_docs) {
      const size_t own = collection.docs_of_concept[c].size();
      if (own > median_cap) continue;
      if (c < mention_cap) continue;  // cross-referenced: not obscure
      RelatedSets related = RelatedConceptsOf(world, c);
      size_t partners = 0;
      for (uint32_t p : related.triangular) {
        partners += collection.docs_of_concept[p].size();
      }
      for (uint32_t p : related.square) {
        partners += collection.docs_of_concept[p].size();
      }
      if (static_cast<double>(partners) >=
          options.obscurity_ratio * static_cast<double>(own)) {
        obscure.push_back(c);
      }
    }
  }
  SQE_CHECK_MSG(with_docs.size() >= options.num_queries -
                                        options.num_zero_relevant,
                "not enough documented concepts for the query count");
  SQE_CHECK_MSG(without_docs.size() >= options.num_zero_relevant,
                "not enough undocumented concepts for zero-relevant queries");

  rng.Shuffle(with_docs);
  rng.Shuffle(without_docs);
  rng.Shuffle(obscure);
  if (options.prefer_obscure_intents) {
    // Obscure intents first; pad with arbitrary documented concepts not
    // already selected if there are too few obscure ones.
    std::vector<uint32_t> merged = obscure;
    for (uint32_t c : with_docs) {
      if (std::find(obscure.begin(), obscure.end(), c) == obscure.end()) {
        merged.push_back(c);
      }
    }
    with_docs = std::move(merged);
  }

  std::vector<uint32_t> intents(
      with_docs.begin(),
      with_docs.begin() +
          static_cast<ptrdiff_t>(options.num_queries -
                                 options.num_zero_relevant));
  intents.insert(intents.end(), without_docs.begin(),
                 without_docs.begin() +
                     static_cast<ptrdiff_t>(options.num_zero_relevant));
  rng.Shuffle(intents);

  QuerySet out;
  out.qrels.Resize(options.num_queries);

  for (size_t qi = 0; qi < intents.size(); ++qi) {
    const uint32_t c = intents[qi];
    const Concept& cpt = world.concepts[c];
    GeneratedQuery query;
    query.intent_concept = c;
    query.true_entities.push_back(cpt.article);

    // ---- query text ---------------------------------------------------------
    std::vector<std::string> words;
    if (rng.NextBool(options.p_include_canonical)) {
      if (cpt.name_terms.size() > 1 && rng.NextBool(options.p_full_title)) {
        for (const std::string& t : cpt.name_terms) {
          words.push_back(Capitalize(t));
        }
      } else {
        words.push_back(Capitalize(cpt.name_terms.front()));
      }
    }
    if (!cpt.query_alias.empty() && rng.NextBool(options.p_use_alias)) {
      words.push_back(cpt.query_alias);
    }
    const size_t num_colloquial =
        options.min_colloquial +
        rng.NextBounded(options.max_colloquial - options.min_colloquial + 1);
    for (size_t i = 0; i < num_colloquial && !cpt.colloquial_terms.empty();
         ++i) {
      words.push_back(cpt.colloquial_terms[rng.NextBounded(
          cpt.colloquial_terms.size())]);
    }
    if (rng.NextBool(options.p_topic_term)) {
      const auto& pool = world.topic_terms[cpt.topic];
      words.push_back(pool[rng.NextBounded(pool.size())]);
    }
    if (words.empty()) {
      words.push_back(cpt.colloquial_terms.empty()
                          ? Capitalize(cpt.name_terms.front())
                          : cpt.colloquial_terms.front());
    }
    for (size_t i = 0; i < words.size(); ++i) {
      if (i > 0) query.text += ' ';
      query.text += words[i];
    }

    // ---- qrels ---------------------------------------------------------------
    RelatedSets related = RelatedConceptsOf(world, c);
    if (!collection.docs_of_concept[c].empty()) {
      for (uint32_t doc : collection.docs_of_concept[c]) {
        out.qrels.AddRelevant(qi, doc);
      }
      auto add_partner_docs = [&](const std::vector<uint32_t>& partners,
                                  double p_relevant) {
        for (uint32_t p : partners) {
          for (uint32_t doc : collection.docs_of_concept[p]) {
            if (rng.NextBool(p_relevant)) {
              out.qrels.AddRelevant(qi, doc);
            }
          }
        }
      };
      add_partner_docs(related.triangular, options.p_triangular_relevant);
      add_partner_docs(related.square, options.p_square_relevant);
    }
    // Intent concepts without documents keep empty qrels: the collection
    // simply does not cover the queried entity (the CHiC situation).

    // ---- ground-truth optimal query graph ------------------------------------
    query.ground_truth_graph = BuildGroundTruthGraph(world, c, related);

    out.queries.push_back(std::move(query));
  }

  return out;
}

}  // namespace sqe::synth
