// Dataset assembly and the three paper-dataset presets.
//
// A Dataset bundles everything an experiment needs: the shared world's KB,
// an indexed document collection, the query set with qrels and ground-truth
// graphs, and the entity-linking machinery (surface forms mined from
// titles plus the colloquial alias noise that bounds automatic linking
// precision).
//
// Presets (scaled-down mirrors of the paper's statistics — see DESIGN.md):
//   ImageCLEF-like : 20k docs over half the world's topics, 50 queries,
//                    every query has relevant docs, lenient assessors.
//   CHiC-2012-like : 60k docs over all topics, 50 queries of which 14 have
//                    zero relevant docs, strict assessors (few relevant).
//   CHiC-2013-like : 60k docs, 1 zero-relevant query, medium strictness.
#ifndef SQE_SYNTH_DATASET_H_
#define SQE_SYNTH_DATASET_H_

#include <memory>
#include <string>

#include "entity/entity_linker.h"
#include "entity/surface_forms.h"
#include "index/inverted_index.h"
#include "synth/collection.h"
#include "synth/query_gen.h"
#include "synth/world.h"
#include "text/analyzer.h"

namespace sqe::synth {

/// Full recipe for building a dataset over a world.
struct DatasetSpec {
  std::string name;
  CollectionOptions collection;
  QueryGenOptions queries;
  /// Dirichlet smoothing the retriever should use for this collection.
  double retrieval_mu = 300.0;
};

/// A ready-to-query dataset. Movable, not copyable.
struct Dataset {
  std::string name;
  const World* world = nullptr;  // not owned
  Collection collection;
  index::InvertedIndex index;
  QuerySet query_set;
  // Heap-allocated so their addresses survive moves of the Dataset (the
  // linker stores pointers to both).
  std::unique_ptr<text::Analyzer> analyzer_holder =
      std::make_unique<text::Analyzer>();
  std::unique_ptr<entity::SurfaceFormDictionary> surface_forms =
      std::make_unique<entity::SurfaceFormDictionary>();
  std::unique_ptr<entity::EntityLinker> linker;
  double retrieval_mu = 300.0;

  text::Analyzer& analyzer() { return *analyzer_holder; }
  const text::Analyzer& analyzer() const { return *analyzer_holder; }
  size_t NumQueries() const { return query_set.queries.size(); }
};

/// Builds (indexes, links) a dataset deterministically.
Dataset BuildDataset(const World& world, const DatasetSpec& spec);

/// World sized for the paper reproduction (shared by all three datasets).
WorldOptions PaperWorldOptions();

/// The three dataset presets over PaperWorldOptions()'s world.
DatasetSpec ImageClefSpec();
DatasetSpec Chic2012Spec();
DatasetSpec Chic2013Spec();

/// Smaller world + dataset used by unit/integration tests (seconds, not
/// minutes, to build).
WorldOptions TinyWorldOptions();
DatasetSpec TinyDatasetSpec();

}  // namespace sqe::synth

#endif  // SQE_SYNTH_DATASET_H_
