// Query, qrels and ground-truth query-graph generation
// (DESIGN.md §3, substitutions 2 and 3).
//
// Each query has a single *intent concept* c. Its raw text exhibits the
// vocabulary-mismatch / topic-inexperience failure modes from the paper's
// introduction: it includes c's canonical name only sometimes (often
// truncated), and otherwise leans on colloquial terms shared across the
// topic plus overly general topic terms.
//
// Relevance is generative: a document is relevant iff its primary concept
// is c, or is a ground-truth related concept of c (same group = triangular
// partner, or square partner) that passes the per-dataset assessor-
// strictness Bernoulli draw. Queries whose intent concept has no documents
// at all have empty qrels — the CHiC datasets' zero-relevant queries.
//
// The same related-concept set, with motif multiplicities, forms the
// *optimal query graph* used by SQE^UB and the Figure 2 structural
// analysis — the synthetic counterpart of the published ground truth [10].
#ifndef SQE_SYNTH_QUERY_GEN_H_
#define SQE_SYNTH_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/qrels.h"
#include "sqe/query_graph.h"
#include "synth/collection.h"
#include "synth/world.h"

namespace sqe::synth {

struct QueryGenOptions {
  uint64_t seed = 99;
  size_t num_queries = 50;
  /// How many queries target concepts that have no documents (0 relevant).
  size_t num_zero_relevant = 0;

  /// Probability the query includes (part of) the canonical name.
  double p_include_canonical = 0.40;
  /// Given inclusion, probability the full multi-word title is used
  /// (otherwise only the first name term).
  double p_full_title = 0.35;
  size_t min_colloquial = 1;
  size_t max_colloquial = 2;
  double p_topic_term = 0.35;
  /// Probability the query uses the concept's user-language alias (the
  /// "common name" that documents never contain but the linker knows).
  double p_use_alias = 0.85;

  /// Assessor strictness: probability a related concept's document is
  /// judged relevant (documents of the intent concept always are).
  /// Triangular (same-group) partners are semantically closer than square
  /// partners, so they get their own, typically higher, probability.
  double p_triangular_relevant = 1.0;
  double p_square_relevant = 0.7;

  /// Intent concepts are drawn from [concept_min, concept_max).
  uint32_t concept_min = 0;
  uint32_t concept_max = UINT32_MAX;

  /// Prefer "obscure" intents: concepts whose own document count is small
  /// while their ground-truth partners are well covered. This is the
  /// "cable cars" -> "funicular" situation of the paper's motivating
  /// examples — the user's name for the thing is rare in the collection,
  /// its structural twins carry the collection vocabulary. Queries for
  /// well-covered concepts would not need expansion in the first place.
  bool prefer_obscure_intents = true;
  /// A concept qualifies as obscure when its partners' combined documents
  /// reach this multiple of its own document count.
  double obscurity_ratio = 3.0;
  /// Must equal the collection's mentionable_fraction: obscure intents are
  /// drawn from the index tail that documents never cross-reference.
  double mentionable_fraction = 0.6;
};

/// One generated query with all its ground truth.
struct GeneratedQuery {
  std::string text;
  uint32_t intent_concept = 0;
  /// The manual ("M") query nodes: the intent concept's article.
  std::vector<kb::ArticleId> true_entities;
  /// Ground-truth optimal query graph (for SQE^UB / Fig. 2).
  expansion::QueryGraph ground_truth_graph;
};

struct QuerySet {
  std::vector<GeneratedQuery> queries;
  eval::Qrels qrels;  // indexed by query position, doc ids = collection ids
};

/// Deterministically generates a query set over a world + collection.
QuerySet GenerateQueries(const World& world, const Collection& collection,
                         const QueryGenOptions& options);

}  // namespace sqe::synth

#endif  // SQE_SYNTH_QUERY_GEN_H_
