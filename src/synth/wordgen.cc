#include "synth/wordgen.h"

#include <array>

#include "common/macros.h"

namespace sqe::synth {

namespace {
// Onsets/nuclei chosen so words end in vowels or "safe" consonants; none of
// the codas create Porter-stemmable suffixes (-ed, -ing, -s, -tion, ...).
constexpr std::array<const char*, 16> kOnsets = {
    "b", "d", "f", "g", "k", "l", "m", "n",
    "p", "r", "t", "v", "z", "br", "tr", "kl"};
constexpr std::array<const char*, 6> kNuclei = {"a", "e", "i", "o", "u", "ai"};
constexpr std::array<const char*, 4> kCodas = {"k", "p", "b", "g"};
}  // namespace

std::string WordGenerator::MakeCandidate() {
  const size_t syllables = 2 + rng_.NextBounded(3);  // 2..4
  std::string word;
  for (size_t i = 0; i < syllables; ++i) {
    word += kOnsets[rng_.NextBounded(kOnsets.size())];
    word += kNuclei[rng_.NextBounded(kNuclei.size())];
  }
  // Close with a coda consonant that no Porter suffix ends in, so the word
  // is its own stem (trailing vowels, especially 'e', would be rewritten).
  word += kCodas[rng_.NextBounded(kCodas.size())];
  return word;
}

std::string WordGenerator::NextWord() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string candidate = MakeCandidate();
    if (used_.insert(candidate).second) return candidate;
  }
  // The syllable space is ~10^4..10^9; exhaustion means a caller bug.
  SQE_CHECK_MSG(false, "synthetic word space exhausted");
  return {};
}

std::vector<std::string> WordGenerator::NextWords(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextWord());
  return out;
}

}  // namespace sqe::synth
