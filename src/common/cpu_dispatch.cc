#include "common/cpu_dispatch.h"

#include <cstdlib>
#include <cstring>

namespace sqe {
namespace {

SimdLevel ProbeHardware() {
#if defined(__x86_64__) || defined(__i386__)
  // SSE2 is architectural on x86-64; __builtin_cpu_supports still answers
  // correctly for 32-bit builds. AVX2 support implies the OS saves the ymm
  // state (the builtin checks OSXSAVE + XCR0 as of GCC 8 / Clang 9).
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ParseLevel(const char* name, SimdLevel fallback) {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(name, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(name, "avx2") == 0) return SimdLevel::kAvx2;
  return fallback;  // unknown value: ignore rather than crash at startup
}

SimdLevel Detect() {
  const SimdLevel hw = ProbeHardware();
  const SimdLevel wanted = ParseLevel(std::getenv("SQE_SIMD"), hw);
  return wanted < hw ? wanted : hw;  // the override can only lower
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = Detect();
  return level;
}

SimdLevel HardwareSimdLevel() {
  static const SimdLevel level = ProbeHardware();
  return level;
}

}  // namespace sqe
