// BoundedLaneQueue<T>: a bounded multi-producer/multi-consumer queue with
// priority lanes, the admission-control primitive under the serving
// front-end.
//
// Capacity is shared across lanes (total queued items, not per lane), so
// "queue full" is a single global condition the admission check can reason
// about. Poppers always drain the lowest-numbered non-empty lane first and
// FIFO within a lane — lane 0 is the interactive lane, lane 1 the batch
// lane in the serving front-end.
//
// All state is SQE_GUARDED_BY one mutex and checked by clang's
// -Wthread-safety analysis, like ThreadPool's queue. Admission decisions
// that must be atomic with the push (estimated-wait tests against the
// depth the request would actually see) run as a predicate under that same
// lock via PushIf.
#ifndef SQE_COMMON_BOUNDED_QUEUE_H_
#define SQE_COMMON_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

namespace sqe {

/// Outcome of a push attempt; the serving front-end maps each to a
/// distinct rejection status.
enum class QueuePushOutcome {
  kOk = 0,       // enqueued
  kFull = 1,     // total queued items == capacity
  kDeclined = 2, // the caller's admission predicate said no
  kClosed = 3,   // Close()/CloseAndDrain() already ran
};

template <typename T>
class BoundedLaneQueue {
 public:
  /// `capacity` >= 1 items shared across `num_lanes` >= 1 lanes.
  BoundedLaneQueue(size_t capacity, size_t num_lanes)
      : capacity_(capacity), lanes_(num_lanes) {
    SQE_CHECK(capacity >= 1 && num_lanes >= 1);
  }
  SQE_DISALLOW_COPY_AND_ASSIGN(BoundedLaneQueue);

  /// Atomically: fail if closed, fail if full, ask `admit(queued_ahead)`
  /// (called with the lock held; `queued_ahead` is the current total depth,
  /// i.e. the number of items that would be popped before this one in the
  /// worst case), then enqueue. Never blocks.
  template <typename AdmitFn>
  QueuePushOutcome PushIf(size_t lane, T item, AdmitFn admit)
      SQE_EXCLUDES(mu_) {
    SQE_DCHECK(lane < lanes_.size());
    {
      MutexLock lock(&mu_);
      if (closed_) return QueuePushOutcome::kClosed;
      if (size_ == capacity_) return QueuePushOutcome::kFull;
      if (!admit(size_)) return QueuePushOutcome::kDeclined;
      lanes_[lane].push_back(std::move(item));
      ++size_;
      if (size_ > peak_size_) peak_size_ = size_;
    }
    cv_.Signal();
    return QueuePushOutcome::kOk;
  }

  /// PushIf with an always-admit predicate.
  QueuePushOutcome TryPush(size_t lane, T item) SQE_EXCLUDES(mu_) {
    return PushIf(lane, std::move(item), [](size_t) { return true; });
  }

  /// Blocks until an item is available — lowest lane index first, FIFO
  /// within a lane — or the queue is closed and empty (returns nullopt,
  /// the consumer's exit signal).
  std::optional<T> PopBlocking() SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_, [this]() SQE_REQUIRES(mu_) {
      return size_ > 0 || closed_;
    });
    if (size_ == 0) return std::nullopt;  // closed and drained
    for (std::deque<T>& lane : lanes_) {
      if (!lane.empty()) {
        T item = std::move(lane.front());
        lane.pop_front();
        --size_;
        return item;
      }
    }
    SQE_CHECK_MSG(false, "size_ > 0 but every lane is empty");
    return std::nullopt;
  }

  /// Marks the queue closed (subsequent pushes return kClosed), removes
  /// everything still queued and returns it in pop order, and wakes every
  /// blocked popper so consumers can exit. Idempotent: a second call
  /// returns an empty vector.
  std::vector<T> CloseAndDrain() SQE_EXCLUDES(mu_) {
    std::vector<T> drained;
    {
      MutexLock lock(&mu_);
      closed_ = true;
      drained.reserve(size_);
      for (std::deque<T>& lane : lanes_) {
        for (T& item : lane) drained.push_back(std::move(item));
        lane.clear();
      }
      size_ = 0;
    }
    cv_.SignalAll();
    return drained;
  }

  size_t size() const SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return size_;
  }

  /// High-water mark of size() since construction (monotone).
  size_t peak_size() const SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return peak_size_;
  }

  bool closed() const SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }
  size_t num_lanes() const { return lanes_.size(); }

 private:
  const size_t capacity_;
  mutable Mutex mu_{"bounded_queue", kLockRankBoundedQueue};
  CondVar cv_;
  std::vector<std::deque<T>> lanes_ SQE_GUARDED_BY(mu_);
  size_t size_ SQE_GUARDED_BY(mu_) = 0;
  size_t peak_size_ SQE_GUARDED_BY(mu_) = 0;
  bool closed_ SQE_GUARDED_BY(mu_) = false;
};

}  // namespace sqe

#endif  // SQE_COMMON_BOUNDED_QUEUE_H_
