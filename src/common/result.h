// Result<T>: value-or-Status, the SQE analogue of absl::StatusOr / arrow::Result.
#ifndef SQE_COMMON_RESULT_H_
#define SQE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace sqe {

/// Holds either a value of type T or a non-ok Status explaining why the value
/// is absent. Accessing value() on an error Result aborts (programmer error).
///
/// [[nodiscard]]: like Status, a dropped Result is a swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (ok result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-ok status.
  Result(Status status) : status_(std::move(status)) {
    SQE_CHECK_MSG(!status_.ok(), "Result constructed from ok Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    SQE_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    SQE_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T value() && {
    SQE_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sqe

#endif  // SQE_COMMON_RESULT_H_
