// Clock: the injectable time source behind every deadline, timeout, and
// latency measurement in the serving stack.
//
// SystemClock reads std::chrono::steady_clock. FakeClock is a virtual
// clock that only moves when a test calls Advance()/AdvanceTo(), so a test
// can place a request deadline exactly between two pipeline checkpoints
// and observe the expiry deterministically — no real sleeps, no flaky
// timing margins.
//
// Design note: nothing in the serving front-end ever *sleeps on* a clock.
// All blocking is condition-variable waits resolved by state changes
// (submission, completion, drain), and time is only *read* at admission
// and at cooperative checkpoints. That is what lets FakeClock stay a plain
// monotone counter with no waiter-wakeup integration: advancing it is
// observed at the next Now() read, and there is no code path that would
// block "until" a fake time arrives.
#ifndef SQE_COMMON_CLOCK_H_
#define SQE_COMMON_CLOCK_H_

#include <chrono>

#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

namespace sqe {

/// Abstract monotonic time source. Implementations must be thread-safe:
/// Now() is called concurrently from serving workers and submitters.
class Clock {
 public:
  using Duration = std::chrono::nanoseconds;
  using TimePoint = std::chrono::time_point<std::chrono::steady_clock,
                                            Duration>;

  virtual ~Clock() = default;

  virtual TimePoint Now() const = 0;

  /// Process-wide SystemClock instance — the default for production
  /// callers that do not inject a clock.
  static const Clock* System();
};

/// Real time via std::chrono::steady_clock. Stateless.
class SystemClock final : public Clock {
 public:
  TimePoint Now() const override {
    return std::chrono::time_point_cast<Duration>(
        std::chrono::steady_clock::now());
  }
};

/// Virtual clock for tests: starts at `start` (the epoch by default) and
/// moves only under explicit Advance()/AdvanceTo() calls. Monotone by
/// construction — AdvanceTo into the past is a programmer error.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(TimePoint start = TimePoint{}) : now_(start) {}
  SQE_DISALLOW_COPY_AND_ASSIGN(FakeClock);

  TimePoint Now() const override SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return now_;
  }

  void Advance(Duration d) SQE_EXCLUDES(mu_) {
    SQE_CHECK_MSG(d >= Duration::zero(), "FakeClock must advance forward");
    MutexLock lock(&mu_);
    now_ += d;
  }

  void AdvanceTo(TimePoint t) SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    SQE_CHECK_MSG(t >= now_, "FakeClock must advance forward");
    now_ = t;
  }

 private:
  // Innermost leaf rank: Now() is read under the bounded queue's admission
  // predicate and from arbitrary test phase hooks, and FakeClock has no
  // waiters (nothing ever blocks *on* the clock — see the design note
  // above), so its critical sections acquire nothing.
  mutable Mutex mu_{"fake_clock", kLockRankFakeClock};
  TimePoint now_ SQE_GUARDED_BY(mu_);
};

}  // namespace sqe

#endif  // SQE_COMMON_CLOCK_H_
