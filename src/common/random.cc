#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

namespace sqe {

double Rng::NextGaussian(double mean, double stddev) {
  // Marsaglia polar method; discards the second variate for simplicity.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  SQE_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  SQE_CHECK(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SQE_CHECK(k <= n);
  // For small k relative to n use rejection with a set-like vector probe;
  // for large k shuffle a full range. The crossover keeps both paths O(n).
  std::vector<size_t> out;
  out.reserve(k);
  if (k * 4 >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), size_t{0});
    Shuffle(all);
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
  } else {
    std::vector<bool> taken(n, false);
    while (out.size() < k) {
      size_t x = NextBounded(n);
      if (!taken[x]) {
        taken[x] = true;
        out.push_back(x);
      }
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  SQE_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& x : cdf_) x /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double r = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace sqe
