// Clang thread-safety annotations plus annotated synchronization wrappers.
//
// The macros expand to clang's `capability` attributes when the compiler
// supports them (clang with -Wthread-safety) and to nothing elsewhere, so
// annotated code compiles unchanged under gcc. The annotated Mutex /
// MutexLock / CondVar wrappers replace bare std::mutex in shared mutable
// state: with -Werror=thread-safety, forgetting to hold the right lock when
// touching a SQE_GUARDED_BY member is a compile error, not a data race.
//
// Convention (see DESIGN.md "Error handling and invariants"): every mutable
// member shared between threads is SQE_GUARDED_BY its mutex; functions that
// expect the caller to hold a lock say so with SQE_REQUIRES; public entry
// points that take the lock themselves are SQE_EXCLUDES.
#ifndef SQE_COMMON_THREAD_ANNOTATIONS_H_
#define SQE_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#include "common/deadlock_detector.h"
#include "common/macros.h"

#if defined(__clang__) && defined(__has_attribute)
#define SQE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SQE_THREAD_ANNOTATION_(x)  // no-op on non-clang compilers
#endif

// Type annotations.
#define SQE_CAPABILITY(x) SQE_THREAD_ANNOTATION_(capability(x))
#define SQE_SCOPED_CAPABILITY SQE_THREAD_ANNOTATION_(scoped_lockable)

// Member annotations.
#define SQE_GUARDED_BY(x) SQE_THREAD_ANNOTATION_(guarded_by(x))
#define SQE_PT_GUARDED_BY(x) SQE_THREAD_ANNOTATION_(pt_guarded_by(x))
#define SQE_ACQUIRED_BEFORE(...) \
  SQE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SQE_ACQUIRED_AFTER(...) \
  SQE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function annotations.
#define SQE_REQUIRES(...) \
  SQE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SQE_REQUIRES_SHARED(...) \
  SQE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define SQE_ACQUIRE(...) \
  SQE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SQE_ACQUIRE_SHARED(...) \
  SQE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define SQE_RELEASE(...) \
  SQE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SQE_RELEASE_SHARED(...) \
  SQE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define SQE_EXCLUDES(...) SQE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define SQE_ASSERT_CAPABILITY(x) \
  SQE_THREAD_ANNOTATION_(assert_capability(x))
#define SQE_RETURN_CAPABILITY(x) SQE_THREAD_ANNOTATION_(lock_returned(x))
#define SQE_NO_THREAD_SAFETY_ANALYSIS \
  SQE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace sqe {

class CondVar;

/// std::mutex wrapped as an annotated capability so the analysis can track
/// which locks protect which members.
///
/// Every Mutex carries a *lock class name* (shared by all instances of one
/// member — "thread_pool.queue", "serving.frontend", ...) and an optional
/// static rank from src/common/lock_ranks.h. In debug builds the deadlock
/// detector (src/common/deadlock_detector.h) checks each acquisition
/// against the thread's held stack — rank violations, same-class nesting,
/// and dynamically observed lock-order inversions abort with both lock
/// names before the acquisition can block. Under NDEBUG the name and rank
/// are not even stored and no detector call is emitted, so release builds
/// pay nothing.
class SQE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : Mutex("(unnamed)") {}
  explicit Mutex(const char* name, int rank = lockdep::kNoRank) {
#ifndef NDEBUG
    name_ = name;
    rank_ = rank;
#else
    (void)name;
    (void)rank;
#endif
  }
  SQE_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() SQE_ACQUIRE() {
#ifndef NDEBUG
    lockdep::OnAcquire(this, name_, rank_);
#endif
    mu_.lock();
  }
  void Unlock() SQE_RELEASE() {
    mu_.unlock();
#ifndef NDEBUG
    lockdep::OnRelease(this);
#endif
  }
  bool TryLock() SQE_THREAD_ANNOTATION_(try_acquire_capability(true)) {
    const bool acquired = mu_.try_lock();
#ifndef NDEBUG
    // A failed try_lock is handled by the caller, so try-acquisitions are
    // tracked as held but never contribute ordering edges or checks.
    if (acquired) lockdep::OnTryAcquire(this, name_, rank_);
#endif
    return acquired;
  }
  /// Tells the analysis (not the runtime) that the lock is held; use in
  /// private helpers reached only from locked contexts.
  void AssertHeld() SQE_ASSERT_CAPABILITY(this) {}

  /// Lock class name ("(unnamed)" if defaulted); "" in release builds,
  /// where names are compiled out.
  const char* name() const {
#ifndef NDEBUG
    return name_;
#else
    return "";
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifndef NDEBUG
  const char* name_ = "(unnamed)";
  int rank_ = lockdep::kNoRank;
#endif
};

/// RAII lock guard over the annotated Mutex. Scoped acquire/release is
/// visible to the analysis, so a MutexLock in scope satisfies
/// SQE_GUARDED_BY/SQE_REQUIRES on the mutex it holds.
class SQE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SQE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SQE_RELEASE() { mu_->Unlock(); }
  SQE_DISALLOW_COPY_AND_ASSIGN(MutexLock);

 private:
  Mutex* const mu_;
};

/// Condition variable paired with the annotated Mutex. Wait atomically
/// releases and reacquires the mutex, which the analysis models as "requires
/// the lock held across the call".
class CondVar {
 public:
  CondVar() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(CondVar);

  void Wait(Mutex* mu) SQE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Waits until pred() is true. pred runs with the mutex held. The body is
  /// exempt from analysis because the checker cannot unify the `mu`
  /// parameter with whatever capability the caller's predicate is annotated
  /// against; the SQE_REQUIRES contract still binds callers.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) SQE_REQUIRES(mu)
      SQE_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) Wait(mu);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sqe

#endif  // SQE_COMMON_THREAD_ANNOTATIONS_H_
