// The project-wide static lock order (DESIGN.md "Correctness toolkit").
//
// A Mutex constructed with a rank may only be acquired while every lock the
// thread already holds has a *strictly smaller* rank; the debug-build
// deadlock detector (src/common/deadlock_detector.h) aborts on the first
// violation. Ranks therefore encode the global outer-to-inner acquisition
// order: low ranks are outermost (taken first), high ranks are leaves that
// never hold anything else while locked.
//
// Policy for new locks:
//  * Pick the smallest band that is strictly inside everything that may be
//    held when the new lock is taken, and strictly outside everything the
//    new lock's critical sections themselves acquire.
//  * Leave gaps (ranks are spaced by 10) so future layers slot in without
//    renumbering.
//  * A Mutex whose nesting is genuinely unknowable (test-local locks,
//    short-lived latches in leaf code) may stay unranked — the detector
//    still learns its acquisition order dynamically and aborts on the
//    first observed inversion.
#ifndef SQE_COMMON_LOCK_RANKS_H_
#define SQE_COMMON_LOCK_RANKS_H_

namespace sqe {

// Outermost: the serving front-end's admission/counter lock. Held briefly
// around counter updates; never while executing a request.
inline constexpr int kLockRankServingFrontend = 10;

// SnapshotRegistry's publish serialization lock. Held for the whole
// validate + engine-build + swap of one Publish call (publishing is rare and
// must not block Acquire, which only takes the registry lock below). Taken
// with nothing held, and its critical section acquires the registry lock,
// so it sits between the front-end and the registry.
inline constexpr int kLockRankSnapshotPublish = 12;

// SnapshotRegistry's epoch pointer + counters. Acquire() may be called from
// the front-end's Submit while the front-end lock is held, and Publish swaps
// the pointer under the publish lock, so it ranks inside both. Swapping the
// pointer can run the retiring snapshot's deleter inline, which takes the
// retire-log lock — hence it must rank below that leaf.
inline constexpr int kLockRankSnapshotRegistry = 15;

// The bounded admission queue. Its PushIf predicate may read the injected
// clock (FakeClock locks kLockRankFakeClock), so it must rank below it.
inline constexpr int kLockRankBoundedQueue = 20;

// ThreadPool's task queue, and the per-ParallelFor completion latch. The
// latch is only taken with no other pool lock held, but conceptually sits
// inside the queue (workers pop, release, then signal completion).
inline constexpr int kLockRankThreadPoolQueue = 30;
inline constexpr int kLockRankParallelForLatch = 40;

// A ServingCall's one-shot future lock. Resolved only after the front-end
// and queue locks are released.
inline constexpr int kLockRankServingCall = 50;

// Leaf-ish telemetry and cache shards: held for a handful of loads/stores,
// acquire nothing.
inline constexpr int kLockRankLruCacheShard = 60;
inline constexpr int kLockRankShardRouterStats = 70;
inline constexpr int kLockRankWandStats = 72;

// The registry's retirement log (retired-epoch counter). A snapshot's
// deleter may fire while the registry lock (and transitively the publish
// lock) is held — when Publish drops the last reference to the previous
// epoch — so this is a near-leaf: its critical sections acquire nothing.
inline constexpr int kLockRankRegistryRetire = 80;

// Innermost leaf: FakeClock's time. Read under the bounded queue's
// admission predicate and inside arbitrary test phase hooks; its own
// critical sections acquire nothing.
inline constexpr int kLockRankFakeClock = 90;

}  // namespace sqe

#endif  // SQE_COMMON_LOCK_RANKS_H_
