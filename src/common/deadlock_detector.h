// Debug-build lock-order registry behind sqe::Mutex (the deadlock
// detector of DESIGN.md "Correctness toolkit").
//
// Every Mutex carries a name (its *lock class* — all instances of one
// member share it) and an optional static rank (src/common/lock_ranks.h).
// In debug builds each acquisition is checked, before the underlying
// std::mutex is touched, against everything the thread already holds:
//
//   1. Re-acquiring the same instance                  -> abort (recursion)
//   2. Holding two instances of the same lock class    -> abort (the order
//      between same-class instances is undefined)
//   3. Acquiring rank r while holding rank >= r        -> abort (static
//      lock-order violation)
//   4. Acquiring B while a previously recorded held-lock edge path
//      B -> ... -> A exists for some held A            -> abort (dynamic
//      lock-order inversion: the two orders together can deadlock)
//
// Edges are keyed by lock *class name*, not instance, and persist for the
// process lifetime, so an inversion is caught even when the two orders
// happen on different instances, different threads, or minutes apart —
// and, because the check runs before blocking, it fires even on the
// interleaving that would have actually deadlocked.
//
// The abort message names both lock classes on its first line and prints
// the current thread's held stack plus the held stack recorded when the
// conflicting edge was first seen.
//
// Everything here is compiled out under NDEBUG: release Mutex stores no
// name and makes no calls, so hot paths are untouched.
#ifndef SQE_COMMON_DEADLOCK_DETECTOR_H_
#define SQE_COMMON_DEADLOCK_DETECTOR_H_

#include <cstddef>

namespace sqe::lockdep {

/// Rank of a Mutex that opted out of the static order; such locks are only
/// checked dynamically (rules 1, 2, 4 above).
inline constexpr int kNoRank = -1;

#ifndef NDEBUG

/// Called by Mutex::Lock() before acquiring. Runs all four checks, records
/// new held-lock edges, and pushes the lock onto the thread's held stack.
/// Aborts (after printing both lock names and both held stacks) on the
/// first violation.
void OnAcquire(const void* mu, const char* name, int rank);

/// Called by Mutex::TryLock() after a *successful* try_lock. Pushes the
/// lock onto the held stack but records no ordering edges and runs no
/// order checks: a failed try_lock is handled by the caller, so try-locks
/// cannot contribute to a deadlock cycle.
void OnTryAcquire(const void* mu, const char* name, int rank);

/// Called by Mutex::Unlock() after releasing. Removes the lock from the
/// thread's held stack (at any depth — out-of-order release is legal).
void OnRelease(const void* mu);

/// Number of locks the calling thread currently holds (test hook).
size_t HeldLockCountForTest();

/// Number of distinct held-lock edges recorded so far (test hook).
size_t RecordedEdgeCountForTest();

#endif  // !NDEBUG

}  // namespace sqe::lockdep

#endif  // SQE_COMMON_DEADLOCK_DETECTOR_H_
