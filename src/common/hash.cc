#include "common/hash.h"

#include <array>

namespace sqe {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

// Function-local static of a trivially destructible type (std::array of
// uint32_t) — allowed by the style rules on static storage duration.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = CrcTable();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data, uint32_t crc) {
  return Crc32(data.data(), data.size(), crc);
}

}  // namespace sqe
