#include "common/deadlock_detector.h"

#ifndef NDEBUG

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace sqe::lockdep {
namespace {

// One entry of a thread's held-lock stack.
struct HeldLock {
  const void* mu = nullptr;
  const char* name = nullptr;
  int rank = kNoRank;
  int node = -1;  // graph node id; -1 for try-acquired locks (no edges)
};

// The registry guards its graph with a raw spinlock rather than a
// sqe::Mutex (which would recurse into the detector) or a std::mutex
// (banned outside thread_annotations.h by tools/sqe_lint.py). Critical
// sections are tiny and debug-only, so spinning is fine.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class SpinGuard {
 public:
  explicit SpinGuard(SpinLock* lock) : lock_(lock) { lock_->lock(); }
  ~SpinGuard() { lock_->unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock* const lock_;
};

// The global lock-class graph: node per name, directed edge a -> b when b
// was acquired while a was held. Never destroyed (intentionally leaked via
// a function-local static pointer) so locks in static destructors still
// resolve it.
class Registry {
 public:
  static Registry& Get() {
    static Registry* instance = new Registry;
    return *instance;
  }

  int Intern(const char* name) {
    SpinGuard guard(&lock_);
    auto [it, inserted] = node_ids_.emplace(name, nodes_.size());
    if (inserted) {
      nodes_.emplace_back(name);
      edges_.emplace_back();
    }
    return static_cast<int>(it->second);
  }

  /// Records edges held -> node (with `stack_desc` as provenance for new
  /// ones) after checking for an inversion: a pre-existing path
  /// node -> ... -> held. On inversion, fills both names and the stack
  /// recorded with the first edge of the reverse path, and returns true.
  bool AddEdgesAndCheck(const std::vector<HeldLock>& held, int node,
                        const std::string& stack_desc, std::string* other_name,
                        std::string* other_stack) {
    SpinGuard guard(&lock_);
    for (const HeldLock& h : held) {
      if (h.node < 0 || h.node == node) continue;
      if (PathExistsLocked(node, h.node)) {
        *other_name = nodes_[static_cast<size_t>(h.node)];
        // Provenance: the first hop of the reverse path was recorded with
        // the held stack that established it.
        int hop = FirstHopLocked(node, h.node);
        auto it = edge_stacks_.find({node, hop});
        *other_stack = it == edge_stacks_.end() ? "(unknown)" : it->second;
        return true;
      }
    }
    for (const HeldLock& h : held) {
      if (h.node < 0 || h.node == node) continue;
      if (edges_[static_cast<size_t>(h.node)].insert(node).second) {
        edge_stacks_.emplace(std::make_pair(h.node, node), stack_desc);
      }
    }
    return false;
  }

  size_t EdgeCount() {
    SpinGuard guard(&lock_);
    size_t n = 0;
    for (const auto& out : edges_) n += out.size();
    return n;
  }

 private:
  Registry() = default;

  // DFS from `from`, asking whether `to` is reachable. Graphs are tiny
  // (one node per lock class) and this only runs in debug builds.
  bool PathExistsLocked(int from, int to) {
    if (from == to) return true;
    std::vector<int> stack = {from};
    std::set<int> seen = {from};
    while (!stack.empty()) {
      int n = stack.back();
      stack.pop_back();
      for (int next : edges_[static_cast<size_t>(n)]) {
        if (next == to) return true;
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return false;
  }

  // First hop of some path from -> ... -> to (a path is known to exist).
  int FirstHopLocked(int from, int to) {
    for (int next : edges_[static_cast<size_t>(from)]) {
      if (next == to || PathExistsLocked(next, to)) return next;
    }
    return to;
  }

  SpinLock lock_;
  std::map<std::string, size_t> node_ids_;
  std::vector<std::string> nodes_;
  std::vector<std::set<int>> edges_;
  std::map<std::pair<int, int>, std::string> edge_stacks_;
};

std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

std::string DescribeStack(const std::vector<HeldLock>& held,
                          const char* acquiring) {
  std::string out;
  for (const HeldLock& h : held) {
    out += '"';
    out += h.name;
    out += "\" -> ";
  }
  out += '"';
  out += acquiring;
  out += '"';
  return out;
}

[[noreturn]] void Fatal(const char* headline, const std::string& detail) {
  std::fprintf(stderr, "SQE deadlock detector: %s\n%s\n", headline,
               detail.c_str());
  std::abort();
}

}  // namespace

void OnAcquire(const void* mu, const char* name, int rank) {
  std::vector<HeldLock>& held = HeldStack();
  for (const HeldLock& h : held) {
    if (h.mu == mu) {
      std::string msg = "recursive acquisition of \"";
      msg += name;
      msg += "\"; held stack: " + DescribeStack(held, name);
      Fatal(msg.c_str(), "");
    }
    if (std::strcmp(h.name, name) == 0) {
      std::string msg = "two \"";
      msg += name;
      msg +=
          "\" instances held together; same-class lock order is undefined";
      Fatal(msg.c_str(), "  held stack: " + DescribeStack(held, name));
    }
    if (h.rank != kNoRank && rank != kNoRank && rank <= h.rank) {
      char head[512];
      std::snprintf(head, sizeof(head),
                    "lock-rank violation: acquiring \"%s\" (rank %d) while "
                    "holding \"%s\" (rank %d)",
                    name, rank, h.name, h.rank);
      Fatal(head, "  held stack: " + DescribeStack(held, name) +
                      "\n  ranks must strictly increase inward; see "
                      "src/common/lock_ranks.h");
    }
  }

  Registry& registry = Registry::Get();
  const int node = registry.Intern(name);
  const std::string stack_desc = DescribeStack(held, name);
  std::string other_name;
  std::string other_stack;
  if (registry.AddEdgesAndCheck(held, node, stack_desc, &other_name,
                                &other_stack)) {
    char head[512];
    std::snprintf(head, sizeof(head),
                  "lock-order inversion: acquiring \"%s\" while holding "
                  "\"%s\", but the opposite order was already recorded",
                  name, other_name.c_str());
    Fatal(head, "  this thread:     " + stack_desc +
                    "\n  recorded before: " + other_stack);
  }
  held.push_back(HeldLock{mu, name, rank, node});
}

void OnTryAcquire(const void* mu, const char* name, int rank) {
  HeldStack().push_back(HeldLock{mu, name, rank, /*node=*/-1});
}

void OnRelease(const void* mu) {
  std::vector<HeldLock>& held = HeldStack();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mu == mu) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  Fatal("released a Mutex the thread does not hold", "");
}

size_t HeldLockCountForTest() { return HeldStack().size(); }

size_t RecordedEdgeCountForTest() { return Registry::Get().EdgeCount(); }

}  // namespace sqe::lockdep

#endif  // !NDEBUG
