// Minimal leveled logging to stderr. Thread-safe: the level gate is atomic
// and each log line is emitted with a single fprintf call, so lines from
// concurrent batch-pipeline workers never interleave mid-line (POSIX stdio
// streams lock around each call).
#ifndef SQE_COMMON_LOGGING_H_
#define SQE_COMMON_LOGGING_H_

#include <string>

namespace sqe {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits a log line "[LEVEL] message" if `level` >= the configured minimum.
void Log(LogLevel level, const std::string& message);

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace sqe

#endif  // SQE_COMMON_LOGGING_H_
