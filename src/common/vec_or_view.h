// A read-mostly array that either owns its elements or views memory
// retained by someone else.
//
// This is the storage primitive behind the two snapshot load modes
// (io::LoadMode): builders and heap loads mutate the owned vector through
// vec(); a zero-copy load of an aligned (v3+) snapshot attaches a span
// pointing into the mapped image via SetView, after which the container is
// immutable and costs no heap memory for the elements. All read accessors
// work identically in both modes.
#ifndef SQE_COMMON_VEC_OR_VIEW_H_
#define SQE_COMMON_VEC_OR_VIEW_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/macros.h"

namespace sqe {

template <typename T>
class VecOrView {
 public:
  using value_type = T;

  VecOrView() = default;

  /// True once SetView attached mapped memory; mutation is illegal then.
  bool mapped() const { return mapped_; }

  std::span<const T> span() const {
    return mapped_ ? view_ : std::span<const T>(vec_);
  }
  size_t size() const { return mapped_ ? view_.size() : vec_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return mapped_ ? view_.data() : vec_.data(); }
  const T& operator[](size_t i) const {
    SQE_DCHECK(i < size());
    return data()[i];
  }
  const T& back() const {
    SQE_DCHECK(!empty());
    return data()[size() - 1];
  }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// Owned-mode storage, for builders and heap loads. The element span must
  /// not be cached across mutations (vector reallocation moves it).
  std::vector<T>& vec() {
    SQE_DCHECK(!mapped_);
    return vec_;
  }
  const std::vector<T>& vec() const {
    SQE_DCHECK(!mapped_);
    return vec_;
  }

  /// Switches to zero-copy mode. `view` must outlive this container (the
  /// snapshot loaders retain the image via SnapshotReader::retainer()).
  void SetView(std::span<const T> view) {
    vec_.clear();
    vec_.shrink_to_fit();
    view_ = view;
    mapped_ = true;
  }

  /// Copies mapped-layout data into owned storage (heap load of a v3
  /// image).
  void Assign(std::span<const T> view) {
    SQE_DCHECK(!mapped_);
    vec_.assign(view.begin(), view.end());
  }

 private:
  std::vector<T> vec_;
  std::span<const T> view_;
  bool mapped_ = false;
};

}  // namespace sqe

#endif  // SQE_COMMON_VEC_OR_VIEW_H_
