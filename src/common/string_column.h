// A column of immutable strings with two storage modes, mirroring
// VecOrView: owned (a plain vector<string>, for builders, legacy loads,
// and heap loads) or mapped (an offsets array + contiguous blob pointing
// into a zero-copy snapshot image, handed out as string_views with no
// per-string allocation).
//
// The mapped layout is the on-disk v3 form: offsets[i] / offsets[i+1]
// delimit string i inside the blob, offsets[0] == 0, offsets are
// non-decreasing, offsets[N] == blob size. SetMapped validates exactly
// that, so a corrupted offsets block can never produce an out-of-range
// view.
#ifndef SQE_COMMON_STRING_COLUMN_H_
#define SQE_COMMON_STRING_COLUMN_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace sqe {

class StringColumn {
 public:
  StringColumn() = default;

  bool mapped() const { return mapped_; }

  size_t size() const {
    return mapped_ ? offsets_.size() - 1 : strings_.size();
  }
  bool empty() const { return size() == 0; }

  std::string_view operator[](size_t i) const {
    SQE_DCHECK(i < size());
    if (!mapped_) return strings_[i];
    return blob_.substr(offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// Owned-mode storage, for builders and heap loads.
  std::vector<std::string>& owned() {
    SQE_DCHECK(!mapped_);
    return strings_;
  }
  const std::vector<std::string>& owned() const {
    SQE_DCHECK(!mapped_);
    return strings_;
  }

  /// Validates the mapped layout described above. `what` names the column
  /// in error messages.
  static Status ValidateMappedLayout(std::span<const uint64_t> offsets,
                                     std::string_view blob,
                                     std::string_view what) {
    if (offsets.empty()) {
      return Status::Corruption(std::string(what) +
                                ": empty offsets array (need N+1 entries)");
    }
    if (offsets[0] != 0) {
      return Status::Corruption(std::string(what) +
                                ": offsets do not start at 0");
    }
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) {
        return Status::Corruption(std::string(what) +
                                  ": offsets not monotone");
      }
    }
    if (offsets.back() != blob.size()) {
      return Status::Corruption(std::string(what) +
                                ": offsets do not cover the blob");
    }
    return Status::OK();
  }

  /// Switches to zero-copy mode. Both spans must outlive this column.
  Status SetMapped(std::span<const uint64_t> offsets, std::string_view blob,
                   std::string_view what) {
    SQE_RETURN_IF_ERROR(ValidateMappedLayout(offsets, blob, what));
    strings_.clear();
    strings_.shrink_to_fit();
    offsets_ = offsets;
    blob_ = blob;
    mapped_ = true;
    return Status::OK();
  }

  /// Copies the mapped layout into owned strings (heap load of a v3
  /// image).
  Status AssignMapped(std::span<const uint64_t> offsets,
                      std::string_view blob, std::string_view what) {
    SQE_RETURN_IF_ERROR(ValidateMappedLayout(offsets, blob, what));
    SQE_DCHECK(!mapped_);
    strings_.clear();
    strings_.reserve(offsets.size() - 1);
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      strings_.emplace_back(blob.substr(offsets[i], offsets[i + 1] - offsets[i]));
    }
    return Status::OK();
  }

 private:
  std::vector<std::string> strings_;
  std::span<const uint64_t> offsets_;  // size N+1 in mapped mode
  std::string_view blob_;
  bool mapped_ = false;
};

}  // namespace sqe

#endif  // SQE_COMMON_STRING_COLUMN_H_
