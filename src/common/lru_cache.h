// ShardedLruCache: a thread-safe, sharded least-recently-used cache.
//
// The cache is split into N shards (N rounded up to a power of two), each
// holding an independent LRU list + hash map behind its own annotated Mutex,
// so concurrent callers hashing to different shards never contend. Capacity
// is bounded two ways — entries and approximate bytes — with both budgets
// divided evenly across shards; exceeding either evicts from the cold end of
// the shard's LRU list.
//
// Values are held as std::shared_ptr<const Value>: a Lookup hands back a
// reference the caller can use lock-free for as long as it likes, even if
// the entry is evicted (or replaced) concurrently. The cache never mutates a
// Value after insertion, so sharing is race-free by construction.
//
// All shared state is SQE_GUARDED_BY its shard mutex and checked by clang's
// -Wthread-safety analysis (see src/common/thread_annotations.h).
#ifndef SQE_COMMON_LRU_CACHE_H_
#define SQE_COMMON_LRU_CACHE_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

namespace sqe {

/// Point-in-time counter snapshot of one cache (totalled over its shards).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;  // currently resident
  size_t bytes = 0;    // approximate charge of resident entries

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    entries += other.entries;
    bytes += other.bytes;
    return *this;
  }
};

struct LruCacheOptions {
  /// Maximum resident entries across all shards (floor of 1 per shard).
  size_t capacity = 4096;
  /// Approximate byte budget across all shards. The per-entry charge is the
  /// caller-supplied value charge plus the key size; "approximate" because
  /// container overhead is not accounted.
  size_t max_bytes = 64u << 20;
  /// Requested shard count; rounded up to a power of two.
  size_t num_shards = 16;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(LruCacheOptions options = {}) {
    size_t shards = 1;
    while (shards < options.num_shards && shards < (size_t{1} << 20)) {
      shards <<= 1;
    }
    shard_mask_ = shards - 1;
    per_shard_capacity_ = (options.capacity + shards - 1) / shards;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    per_shard_max_bytes_ = options.max_bytes / shards;
    shards_ = std::make_unique<Shard[]>(shards);
  }
  SQE_DISALLOW_COPY_AND_ASSIGN(ShardedLruCache);

  /// Returns the cached value, refreshing its recency, or nullptr on miss.
  std::shared_ptr<const Value> Lookup(const Key& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->value;
  }

  /// Inserts (or replaces) `key`, charging `charge` + key bytes against the
  /// byte budget, and returns the shared handle so a miss-then-insert caller
  /// can keep using the value without a second lookup. The handle stays
  /// valid even if the entry is evicted immediately.
  std::shared_ptr<const Value> Insert(const Key& key, Value value,
                                      size_t charge = 0) {
    auto holder = std::make_shared<const Value>(std::move(value));
    const size_t entry_charge = charge + KeyBytes(key) + sizeof(Entry);
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    ++shard.insertions;
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->charge;
      it->second->value = holder;
      it->second->charge = entry_charge;
      shard.bytes += entry_charge;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, holder, entry_charge});
      shard.map.emplace(key, shard.lru.begin());
      shard.bytes += entry_charge;
    }
    EvictIfOver(shard);
    return holder;
  }

  /// Drops every entry; counters other than `entries`/`bytes` are kept.
  void Clear() {
    for (size_t s = 0; s <= shard_mask_; ++s) {
      Shard& shard = shards_[s];
      MutexLock lock(&shard.mu);
      shard.map.clear();
      shard.lru.clear();
      shard.bytes = 0;
    }
  }

  /// Consistent-per-shard (not globally atomic) counter snapshot.
  CacheStats Stats() const {
    CacheStats total;
    for (size_t s = 0; s <= shard_mask_; ++s) {
      Shard& shard = shards_[s];
      MutexLock lock(&shard.mu);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.insertions += shard.insertions;
      total.evictions += shard.evictions;
      total.entries += shard.map.size();
      total.bytes += shard.bytes;
    }
    return total;
  }

  size_t num_shards() const { return shard_mask_ + 1; }

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const Value> value;
    size_t charge = 0;
  };

  struct Shard {
    Mutex mu{"lru_cache.shard", kLockRankLruCacheShard};
    std::list<Entry> lru SQE_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map
        SQE_GUARDED_BY(mu);
    size_t bytes SQE_GUARDED_BY(mu) = 0;
    uint64_t hits SQE_GUARDED_BY(mu) = 0;
    uint64_t misses SQE_GUARDED_BY(mu) = 0;
    uint64_t insertions SQE_GUARDED_BY(mu) = 0;
    uint64_t evictions SQE_GUARDED_BY(mu) = 0;
  };

  static size_t KeyBytes(const Key& key) {
    if constexpr (requires(const Key& k) {
                    { k.size() } -> std::convertible_to<size_t>;
                  }) {
      return key.size();
    } else {
      return sizeof(Key);
    }
  }

  Shard& ShardFor(const Key& key) const {
    // std::hash may be near-identity (integers), so finish with fmix64
    // before taking the low bits that pick the shard.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return shards_[h & shard_mask_];
  }

  void EvictIfOver(Shard& shard) SQE_REQUIRES(shard.mu) {
    while (!shard.lru.empty() && (shard.map.size() > per_shard_capacity_ ||
                                  shard.bytes > per_shard_max_bytes_)) {
      const Entry& cold = shard.lru.back();
      shard.bytes -= cold.charge;
      shard.map.erase(cold.key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 1;
  size_t per_shard_max_bytes_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace sqe

#endif  // SQE_COMMON_LRU_CACHE_H_
