// ThreadPool: a fixed pool of worker threads with a shared task queue, plus
// a ParallelFor helper for data-parallel loops over immutable shared state.
//
// The concurrency contract of the batch pipeline (see DESIGN.md §8): workers
// only read shared structures (KnowledgeBase, InvertedIndex) and write to
// disjoint output slots or per-worker scratch, so no synchronization beyond
// the queue itself is needed and results are deterministic regardless of
// scheduling order. The queue state itself is annotated with
// SQE_GUARDED_BY and checked by clang's -Wthread-safety analysis.
#ifndef SQE_COMMON_THREAD_POOL_H_
#define SQE_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"

namespace sqe {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is allowed and means "no workers":
  /// ParallelFor then runs inline on the calling thread (worker id 0), which
  /// keeps single-threaded callers free of any thread machinery.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  SQE_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  size_t num_threads() const { return threads_.size(); }

  /// Number of distinct worker ids ParallelFor can pass to its body:
  /// max(1, num_threads()). Size per-worker scratch arrays with this.
  size_t num_workers() const { return threads_.empty() ? 1 : threads_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task) SQE_EXCLUDES(mu_);

  /// Runs fn(index, worker_id) for every index in [0, n), distributing
  /// indices dynamically across the pool, and blocks until all are done.
  /// worker_id is in [0, num_workers()); a given worker runs one index at a
  /// time, so fn may freely mutate scratch[worker_id].
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn)
      SQE_EXCLUDES(mu_);

  /// Runs fn(outer, inner, worker_id) for every pair in
  /// [0, n_outer) × [0, n_inner), flattened outer-major into one dynamic
  /// ParallelFor — so workers split across outer items and within them
  /// without nesting ParallelFor (which would block pool workers). Used by
  /// the sharded batch pipeline to schedule (query, shard) scoring tasks.
  void ParallelFor2D(size_t n_outer, size_t n_inner,
                     const std::function<void(size_t, size_t, size_t)>& fn)
      SQE_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop() SQE_EXCLUDES(mu_);

  Mutex mu_{"thread_pool.queue", kLockRankThreadPoolQueue};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ SQE_GUARDED_BY(mu_);
  bool shutting_down_ SQE_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace sqe

#endif  // SQE_COMMON_THREAD_POOL_H_
