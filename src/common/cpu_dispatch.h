// Runtime CPU feature dispatch for the SIMD kernels.
//
// The scoring kernels in retrieval/score_batch.h are selected at *compile*
// time (SQE_SCORING_SIMD) because their contract is bit-identical floating
// point, which only holds when every build runs the same instruction mix.
// Integer kernels — the bit-packed posting codec in index/postings_codec.h
// — have no such constraint: every unpack width produces the same exact
// integers on every ISA, so the widest available kernel can be picked once
// at startup from CPUID and swapped per machine without changing results.
//
// DetectSimdLevel() probes the host once (thread-safe via static init) and
// honors an SQE_SIMD=scalar|sse2|avx2 environment override so tests and
// benchmarks can pin or cross-check a specific kernel on any machine. The
// override can only lower the level: requesting avx2 on a non-avx2 host
// falls back to what the hardware supports.
#ifndef SQE_COMMON_CPU_DISPATCH_H_
#define SQE_COMMON_CPU_DISPATCH_H_

namespace sqe {

/// Instruction-set tiers the integer kernels are compiled for, in strictly
/// increasing order of capability (comparisons rely on the ordering).
enum class SimdLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable tier name ("scalar" / "sse2" / "avx2") for logs, bench
/// labels, and `sqe_tool index stats`.
const char* SimdLevelName(SimdLevel level);

/// The tier this process dispatches to: min(hardware capability, SQE_SIMD
/// env override). Probed once; subsequent calls return the cached value.
SimdLevel DetectSimdLevel();

/// Hardware capability alone, ignoring the environment override (so stats
/// output can report both what the host has and what is in use).
SimdLevel HardwareSimdLevel();

}  // namespace sqe

#endif  // SQE_COMMON_CPU_DISPATCH_H_
