#include "common/status.h"

namespace sqe {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sqe
