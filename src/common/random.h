// Deterministic pseudo-random number generation for synthetic data.
//
// All synthetic datasets in SQE are seeded, so experiments are exactly
// reproducible across runs and machines. We use xoshiro256** (public domain,
// Blackman & Vigna) seeded through SplitMix64 — fast, high quality, and
// stable across standard library implementations (std::mt19937 streams are
// stable too, but distributions are not; we implement our own).
#ifndef SQE_COMMON_RANDOM_H_
#define SQE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace sqe {

/// SplitMix64: used to expand a single 64-bit seed into a full state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    SQE_CHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    SQE_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Gaussian via Marsaglia polar method.
  double NextGaussian(double mean, double stddev);

  /// Zipf-distributed rank in [0, n): P(k) ∝ 1/(k+1)^s. Uses an inverted-CDF
  /// table built lazily per (n, s); callers with a fixed distribution should
  /// prefer ZipfSampler below.
  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Precomputed Zipf(s) sampler over ranks [0, n).
class ZipfSampler {
 public:
  /// Builds the cumulative table; O(n) once, O(log n) per sample.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sqe

#endif  // SQE_COMMON_RANDOM_H_
