// Hashing utilities: 64-bit FNV-1a for strings and a CRC32 used by the
// snapshot format to detect corruption.
#ifndef SQE_COMMON_HASH_H_
#define SQE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace sqe {

/// 64-bit FNV-1a. Deterministic across platforms; used for term dictionaries
/// and surface-form tables (never for security).
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Mixes two 64-bit hashes (boost::hash_combine-style, 64-bit constants).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

/// CRC-32 (IEEE 802.3 polynomial, reflected). Streaming-friendly:
/// pass the previous crc to continue.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

}  // namespace sqe

#endif  // SQE_COMMON_HASH_H_
