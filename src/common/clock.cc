#include "common/clock.h"

namespace sqe {

const Clock* Clock::System() {
  static const SystemClock* const kSystem = new SystemClock();
  return kSystem;
}

}  // namespace sqe
