#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace sqe {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  // One fprintf per line: stdio locks the stream per call, so concurrent
  // writers can interleave whole lines but never split one.
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

void LogDebug(const std::string& message) { Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) {
  Log(LogLevel::kWarning, message);
}
void LogError(const std::string& message) { Log(LogLevel::kError, message); }

}  // namespace sqe
