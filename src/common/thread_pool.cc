#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>

namespace sqe {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  cv_.SignalAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    SQE_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  cv_.Signal();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      cv_.Wait(&mu_, [this]() SQE_REQUIRES(mu_) {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = threads_.size();
  if (workers == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  // Dynamic scheduling: each worker pulls the next unclaimed index, which
  // balances skewed per-item costs (queries differ wildly in motif work).
  // Completion is tracked with a dedicated latch so ParallelFor can nest
  // with unrelated Submit() traffic.
  struct State {
    std::atomic<size_t> next{0};
    Mutex done_mu{"thread_pool.parallel_for_latch", kLockRankParallelForLatch};
    CondVar done_cv;
    size_t active SQE_GUARDED_BY(done_mu) = 0;
  };
  State state;
  const size_t spawned = std::min(workers, n);
  {
    MutexLock lock(&state.done_mu);
    state.active = spawned;
  }

  auto run = [&state, n, &fn](size_t worker_id) {
    for (;;) {
      size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i, worker_id);
    }
    MutexLock lock(&state.done_mu);
    if (--state.active == 0) state.done_cv.Signal();
  };

  for (size_t w = 0; w < spawned; ++w) {
    Submit([&run, w] { run(w); });
  }
  MutexLock lock(&state.done_mu);
  state.done_cv.Wait(&state.done_mu, [&state]() SQE_REQUIRES(state.done_mu) {
    return state.active == 0;
  });
}

void ThreadPool::ParallelFor2D(
    size_t n_outer, size_t n_inner,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n_outer == 0 || n_inner == 0) return;
  SQE_CHECK(n_outer <= SIZE_MAX / n_inner);
  ParallelFor(n_outer * n_inner, [n_inner, &fn](size_t i, size_t worker) {
    fn(i / n_inner, i % n_inner, worker);
  });
}

size_t ThreadPool::HardwareConcurrency() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

}  // namespace sqe
