#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sqe {

std::vector<std::string_view> Split(std::string_view input, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view input) {
  std::vector<std::string_view> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.push_back(input.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename Vec>
std::string JoinImpl(const Vec& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sqe
