// Wall-clock timing utilities used by the benchmark harnesses (Table 4).
#ifndef SQE_COMMON_TIMER_H_
#define SQE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sqe {

/// A simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections.
class AccumulatingTimer {
 public:
  /// RAII scope: adds the scope's duration to the owning accumulator.
  class Scope {
   public:
    explicit Scope(AccumulatingTimer* owner) : owner_(owner) {}
    ~Scope() { owner_->total_seconds_ += timer_.ElapsedSeconds(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    AccumulatingTimer* owner_;
    Timer timer_;
  };

  Scope Measure() { return Scope(this); }
  void Add(double seconds) { total_seconds_ += seconds; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }
  void Reset() { total_seconds_ = 0.0; }

 private:
  double total_seconds_ = 0.0;
};

}  // namespace sqe

#endif  // SQE_COMMON_TIMER_H_
