// Status: the error-reporting type used across SQE public APIs.
//
// SQE does not use C++ exceptions. Fallible operations return Status (or
// Result<T>, see result.h). The design follows the RocksDB/Arrow convention:
// a small value type carrying an error code and a human-readable message.
#ifndef SQE_COMMON_STATUS_H_
#define SQE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace sqe {

// Error categories. Keep coarse: callers branch on ok() almost always and on
// code() rarely (e.g., NotFound vs Corruption during snapshot loading).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kIOError = 4,
  kOutOfRange = 5,
  kAlreadyExists = 6,
  kFailedPrecondition = 7,
  kUnimplemented = 8,
  kInternal = 9,
  // Serving-path codes (see src/serving/): admission control rejects with
  // ResourceExhausted, cooperative deadline checkpoints return
  // DeadlineExceeded, and cancellation tokens resolve as Cancelled.
  kResourceExhausted = 10,
  kDeadlineExceeded = 11,
  kCancelled = 12,
};

/// Returns a stable human-readable name for a status code ("Ok", "IOError"...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds either success (ok) or an error code plus message.
/// Cheap to copy in the ok case (no allocation); error carries a string.
///
/// [[nodiscard]]: ignoring a returned Status silently swallows errors, so
/// every call site must consume it (propagate, branch on ok(), or log).
class [[nodiscard]] Status {
 public:
  /// Constructs an ok status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace sqe

#endif  // SQE_COMMON_STATUS_H_
