// Common macros used across the SQE codebase.
#ifndef SQE_COMMON_MACROS_H_
#define SQE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Marks a class as neither copyable nor movable.
#define SQE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

// Fatal invariant check. Used for programmer errors (not recoverable I/O or
// data errors, which go through Status). Always on, including release builds,
// in the spirit of database kernels where silent corruption is worse than a
// crash.
#define SQE_CHECK(condition)                                               \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "SQE_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SQE_CHECK_MSG(condition, msg)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "SQE_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, msg);                    \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only invariant check: identical to SQE_CHECK in debug builds,
// compiled out (condition not evaluated) under NDEBUG. Use on hot read paths
// where the bounds are already guaranteed by construction plus Validate()
// at load time — SQE_CHECK there costs a branch per lookup inside motif
// traversal loops. The `false &&` keeps the condition syntactically and
// semantically checked in all build modes so it cannot rot.
#ifdef NDEBUG
#define SQE_DCHECK(condition) \
  do {                        \
    if (false && (condition)) {} \
  } while (0)
#define SQE_DCHECK_MSG(condition, msg) \
  do {                                 \
    if (false && (condition)) {        \
      (void)(msg);                     \
    }                                  \
  } while (0)
#else
#define SQE_DCHECK(condition) SQE_CHECK(condition)
#define SQE_DCHECK_MSG(condition, msg) SQE_CHECK_MSG(condition, msg)
#endif

// Propagates a non-ok Status from an expression that yields a Status.
#define SQE_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::sqe::Status _status = (expr);               \
    if (!_status.ok()) return _status;            \
  } while (0)

// Evaluates an expression yielding Result<T>; on error returns the Status,
// otherwise assigns the value to `lhs`.
#define SQE_ASSIGN_OR_RETURN(lhs, expr)             \
  auto SQE_CONCAT_(_result_, __LINE__) = (expr);    \
  if (!SQE_CONCAT_(_result_, __LINE__).ok())        \
    return SQE_CONCAT_(_result_, __LINE__).status(); \
  lhs = std::move(SQE_CONCAT_(_result_, __LINE__)).value()

#define SQE_CONCAT_IMPL_(a, b) a##b
#define SQE_CONCAT_(a, b) SQE_CONCAT_IMPL_(a, b)

#endif  // SQE_COMMON_MACROS_H_
