// Small string helpers shared across modules.
#ifndef SQE_COMMON_STRING_UTIL_H_
#define SQE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqe {

/// Splits `input` on any occurrence of `delim`; empty pieces are kept.
std::vector<std::string_view> Split(std::string_view input, char delim);

/// Splits on runs of ASCII whitespace; empty pieces are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view input);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lower-casing (bytes >= 0x80 are passed through).
std::string ToLowerAscii(std::string_view input);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a non-negative integer; returns false on any non-digit or overflow.
bool ParseUint64(std::string_view s, uint64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sqe

#endif  // SQE_COMMON_STRING_UTIL_H_
