// Deadline: an absolute per-request time bound, read through the injected
// Clock at admission and at every cooperative checkpoint.
//
// Deadlines are absolute rather than durations so that queue wait counts
// against them: a request admitted with 50 ms of budget that waits 60 ms in
// the queue is expired at dequeue, before any engine work.
#ifndef SQE_SERVING_DEADLINE_H_
#define SQE_SERVING_DEADLINE_H_

#include "common/clock.h"

namespace sqe::serving {

class Deadline {
 public:
  /// Default-constructed deadlines are infinite: never expired, unlimited
  /// remaining budget.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::TimePoint t) {
    Deadline d;
    d.has_ = true;
    d.at_ = t;
    return d;
  }
  static Deadline After(const Clock& clock, Clock::Duration budget) {
    return At(clock.Now() + budget);
  }

  bool infinite() const { return !has_; }
  /// Only meaningful when !infinite().
  Clock::TimePoint time() const { return at_; }

  bool Expired(const Clock& clock) const {
    return has_ && clock.Now() >= at_;
  }

  /// Remaining budget; Duration::max() when infinite, clamped at zero when
  /// already expired.
  Clock::Duration Remaining(const Clock& clock) const {
    if (!has_) return Clock::Duration::max();
    Clock::TimePoint now = clock.Now();
    return now >= at_ ? Clock::Duration::zero() : at_ - now;
  }

 private:
  bool has_ = false;
  Clock::TimePoint at_{};
};

}  // namespace sqe::serving

#endif  // SQE_SERVING_DEADLINE_H_
