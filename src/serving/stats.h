// ServingStats: counter snapshot of the serving front-end's telemetry.
//
// Counters are monotone (they only grow for the lifetime of a front-end);
// queue_depth is instantaneous and peak_queue_depth is its high-water
// mark. The accounting identity every front-end maintains:
//   submitted == completed + expired + cancelled + rejected() + in flight
// and once the front-end is drained (Shutdown() returned, every call
// resolved) the in-flight term is zero.
#ifndef SQE_SERVING_STATS_H_
#define SQE_SERVING_STATS_H_

#include <cstdint>
#include <string>

namespace sqe::serving {

struct ServingStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;  // made it into the queue
  uint64_t completed = 0;
  uint64_t expired = 0;    // DeadlineExceeded at a checkpoint
  uint64_t cancelled = 0;  // token fired at a checkpoint

  uint64_t rejected_queue_full = 0;      // ResourceExhausted
  uint64_t rejected_estimated_wait = 0;  // ResourceExhausted
  uint64_t rejected_shutdown = 0;        // FailedPrecondition
  /// Registry-backed front-end with no snapshot published yet.
  uint64_t rejected_no_snapshot = 0;     // FailedPrecondition

  uint64_t queue_depth = 0;       // at snapshot time
  uint64_t peak_queue_depth = 0;  // monotone high-water mark

  /// Sums for derived averages (milliseconds, front-end clock time).
  double total_queue_ms = 0.0;    // over dequeued requests
  double total_service_ms = 0.0;  // over executed requests

  uint64_t rejected() const {
    return rejected_queue_full + rejected_estimated_wait + rejected_shutdown +
           rejected_no_snapshot;
  }
  uint64_t resolved() const {
    return completed + expired + cancelled + rejected();
  }

  std::string ToString() const;
};

}  // namespace sqe::serving

#endif  // SQE_SERVING_STATS_H_
