#include "serving/frontend.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

namespace sqe::serving {

namespace {

double ToMillis(Clock::Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

double ToSeconds(Clock::Duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

ServingFrontend::ServingFrontend(const expansion::SqeEngine* engine,
                                 ServingFrontendConfig config)
    : ServingFrontend(engine, nullptr, std::move(config)) {}

ServingFrontend::ServingFrontend(const SnapshotRegistry* registry,
                                 ServingFrontendConfig config)
    : ServingFrontend(nullptr, registry, std::move(config)) {}

ServingFrontend::ServingFrontend(const expansion::SqeEngine* engine,
                                 const SnapshotRegistry* registry,
                                 ServingFrontendConfig config)
    : engine_(engine),
      registry_(registry),
      config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : Clock::System()),
      queue_(std::max<size_t>(1, config_.queue_capacity), /*num_lanes=*/2) {
  SQE_CHECK(engine != nullptr || registry != nullptr);
  SQE_CHECK_MSG(config_.num_workers >= 1,
                "serving front-end needs at least one worker");
  if (config_.initial_service_estimate > Clock::Duration::zero()) {
    MutexLock lock(&mu_);
    service_estimate_seconds_ = ToSeconds(config_.initial_service_estimate);
  }
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingFrontend::~ServingFrontend() { Shutdown(); }

void ServingFrontend::ResolveRejected(
    const std::shared_ptr<ServingCall>& call, Status status) const {
  ServingResponse response;
  response.status = std::move(status);
  response.phase_reached = expansion::RunPhase::kPreAnalysis;
  response.total_ms = ToMillis(clock_->Now() - call->submit_time_);
  if (call->snapshot_ != nullptr) {
    response.epoch = call->snapshot_->epoch();
  }
  call->Resolve(std::move(response));
  // Unpin after resolution so a drained request cannot delay retirement of
  // the epoch it was admitted under.
  call->snapshot_.reset();
}

std::shared_ptr<ServingCall> ServingFrontend::Submit(ServingRequest request) {
  const Deadline deadline = request.deadline;
  const size_t lane =
      request.priority == RequestPriority::kInteractive ? 0 : 1;
  std::shared_ptr<ServingCall> call(new ServingCall(
      next_id_.fetch_add(1, std::memory_order_relaxed), std::move(request),
      clock_->Now()));

  double estimate_seconds;
  bool reject_shutdown = false;
  bool reject_no_snapshot = false;
  {
    MutexLock lock(&mu_);
    ++counters_.submitted;
    if (shutting_down_) {
      ++counters_.rejected_shutdown;
      reject_shutdown = true;
      estimate_seconds = -1.0;  // unused
    } else {
      if (registry_ != nullptr) {
        // Pin the current epoch for this request's whole lifetime. Taken
        // under mu_ so the admission decision and the pinned epoch are one
        // atomic step (the registry lock ranks inside the front-end's).
        call->snapshot_ = registry_->Acquire();
        if (call->snapshot_ == nullptr) {
          ++counters_.rejected_no_snapshot;
          reject_no_snapshot = true;
        }
      }
      estimate_seconds = service_estimate_seconds_;
    }
  }
  if (reject_shutdown) {
    // Resolve outside the stats lock: it takes the call's own mutex and
    // may wake a waiter immediately.
    ResolveRejected(call, Status::FailedPrecondition(
                              "serving front-end is shutting down"));
    return call;
  }
  if (reject_no_snapshot) {
    ResolveRejected(call, Status::FailedPrecondition(
                              "no snapshot published to the registry yet"));
    return call;
  }
  // A shutdown that begins after the check above closes the queue before
  // draining, so the push below observes kClosed and the request is still
  // rejected deterministically — it can never start executing.

  const size_t workers = workers_.size();
  bool declined_wait = false;
  QueuePushOutcome outcome = queue_.PushIf(
      lane, call, [&](size_t queued_ahead) {
        if (deadline.infinite() || estimate_seconds <= 0.0) return true;
        // Worst case every queued item is served before this one:
        // ceil(depth / workers) service "waves" of estimated length each.
        const size_t waves = (queued_ahead + workers - 1) / workers;
        const double estimated_wait_seconds =
            static_cast<double>(waves) * estimate_seconds;
        if (estimated_wait_seconds >
            ToSeconds(deadline.Remaining(*clock_))) {
          declined_wait = true;
          return false;
        }
        return true;
      });

  switch (outcome) {
    case QueuePushOutcome::kOk: {
      MutexLock lock(&mu_);
      ++counters_.admitted;
      return call;
    }
    case QueuePushOutcome::kFull: {
      {
        MutexLock lock(&mu_);
        ++counters_.rejected_queue_full;
      }
      ResolveRejected(call,
                      Status::ResourceExhausted(
                          "serving queue full (capacity " +
                          std::to_string(queue_.capacity()) + ")"));
      return call;
    }
    case QueuePushOutcome::kDeclined: {
      SQE_CHECK(declined_wait);
      {
        MutexLock lock(&mu_);
        ++counters_.rejected_estimated_wait;
      }
      ResolveRejected(call, Status::ResourceExhausted(
                                "estimated queue wait exceeds the "
                                "request's deadline"));
      return call;
    }
    case QueuePushOutcome::kClosed: {
      {
        MutexLock lock(&mu_);
        ++counters_.rejected_shutdown;
      }
      ResolveRejected(call, Status::FailedPrecondition(
                                "serving front-end is shutting down"));
      return call;
    }
  }
  SQE_CHECK_MSG(false, "unreachable push outcome");
  return call;
}

void ServingFrontend::WorkerLoop() {
  retrieval::RetrieverScratch scratch;
  while (std::optional<std::shared_ptr<ServingCall>> item =
             queue_.PopBlocking()) {
    Execute(*item, &scratch);
  }
}

void ServingFrontend::Execute(const std::shared_ptr<ServingCall>& call,
                              retrieval::RetrieverScratch* scratch) {
  const Clock::TimePoint start = clock_->Now();
  const double queue_ms = ToMillis(start - call->submit_time_);
  const ServingRequest& req = call->request();

  expansion::RunControl control;
  control.clock = clock_;
  if (!req.deadline.infinite()) {
    control.has_deadline = true;
    control.deadline = req.deadline.time();
  }
  control.cancelled = &call->cancel_flag_;
  expansion::RunPhase last_phase = expansion::RunPhase::kPreAnalysis;
  const uint64_t id = call->id();
  control.phase_hook = [this, &last_phase, id](expansion::RunPhase phase) {
    last_phase = phase;
    if (config_.phase_hook) config_.phase_hook(id, phase);
  };

  // Registry mode: run against the epoch pinned at admission, not whatever
  // is current now — a publish that landed while this request was queued
  // must not change what it observes.
  const expansion::SqeEngine* engine =
      call->snapshot_ != nullptr ? &call->snapshot_->engine() : engine_;
  Result<expansion::SqeRunResult> result = engine->RunSqe(
      req.text, req.query_nodes, req.motifs, req.k, control, scratch);

  const Clock::TimePoint end = clock_->Now();
  ServingResponse response;
  response.queue_ms = queue_ms;
  response.total_ms = ToMillis(end - call->submit_time_);
  if (call->snapshot_ != nullptr) {
    response.epoch = call->snapshot_->epoch();
  }
  if (result.ok()) {
    response.status = Status::OK();
    response.result = std::move(result).value();
    response.phase_reached = expansion::RunPhase::kDone;
  } else {
    response.status = std::move(result).status();
    response.phase_reached = last_phase;
  }

  const double service_seconds = ToSeconds(end - start);
  {
    MutexLock lock(&mu_);
    if (response.status.ok()) {
      ++counters_.completed;
      if (config_.adapt_service_estimate) {
        service_estimate_seconds_ =
            service_estimate_seconds_ < 0.0
                ? service_seconds
                : 0.75 * service_estimate_seconds_ + 0.25 * service_seconds;
      }
    } else if (response.status.IsDeadlineExceeded()) {
      ++counters_.expired;
    } else if (response.status.IsCancelled()) {
      ++counters_.cancelled;
    } else {
      SQE_CHECK_MSG(false, "controlled run returned an unexpected status");
    }
    counters_.total_queue_ms += queue_ms;
    counters_.total_service_ms += service_seconds * 1e3;
  }
  // Stats first, Resolve second: a submitter woken by Wait() observes the
  // counters already updated for its own request.
  call->Resolve(std::move(response));
  // Unpin the epoch only after the response (all value types, nothing
  // borrowed from the snapshot) is sealed into the call. If this was the
  // epoch's last lease, retirement runs right here on the worker thread.
  call->snapshot_.reset();
}

void ServingFrontend::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  std::call_once(drain_once_, [this] {
    std::vector<std::shared_ptr<ServingCall>> drained =
        queue_.CloseAndDrain();
    {
      MutexLock lock(&mu_);
      counters_.rejected_shutdown += drained.size();
    }
    for (const std::shared_ptr<ServingCall>& call : drained) {
      ResolveRejected(call, Status::FailedPrecondition(
                                "serving front-end shut down with the "
                                "request still queued"));
    }
    for (std::thread& worker : workers_) worker.join();
  });
}

ServingStats ServingFrontend::Stats() const {
  ServingStats snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = counters_;
  }
  snapshot.queue_depth = queue_.size();
  snapshot.peak_queue_depth = queue_.peak_size();
  return snapshot;
}

}  // namespace sqe::serving
