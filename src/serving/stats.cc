#include "serving/stats.h"

#include <cstdio>

namespace sqe::serving {

std::string ServingStats::ToString() const {
  const uint64_t dequeued = completed + expired + cancelled;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "serving: submitted=%llu admitted=%llu completed=%llu expired=%llu "
      "cancelled=%llu rejected=%llu (full=%llu wait=%llu shutdown=%llu "
      "nosnap=%llu) "
      "queue depth=%llu peak=%llu avg queue %.3f ms avg service %.3f ms",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(rejected()),
      static_cast<unsigned long long>(rejected_queue_full),
      static_cast<unsigned long long>(rejected_estimated_wait),
      static_cast<unsigned long long>(rejected_shutdown),
      static_cast<unsigned long long>(rejected_no_snapshot),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(peak_queue_depth),
      dequeued > 0 ? total_queue_ms / static_cast<double>(dequeued) : 0.0,
      dequeued > 0 ? total_service_ms / static_cast<double>(dequeued) : 0.0);
  return buf;
}

}  // namespace sqe::serving
