#include "serving/snapshot_registry.h"

#include <string>
#include <utility>

namespace sqe::serving {

Snapshot::Snapshot(uint64_t epoch, SnapshotParts parts,
                   std::shared_ptr<expansion::SqeCache> shared_cache)
    : epoch_(epoch),
      parts_(std::move(parts)),
      shared_cache_(std::move(shared_cache)) {
  if (parts_.analyzer == nullptr) {
    parts_.analyzer = std::make_unique<text::Analyzer>();
  }
  expansion::SqeEngineConfig config = parts_.engine_config;
  config.shared_cache = shared_cache_.get();
  config.cache_epoch = epoch_;
  engine_ = std::make_unique<expansion::SqeEngine>(
      parts_.kb.get(), parts_.index.get(), parts_.linker.get(),
      parts_.analyzer.get(), config);
}

SnapshotRegistry::SnapshotRegistry(SnapshotRegistryOptions options)
    : options_(std::move(options)),
      retire_log_(std::make_shared<RetireLog>()) {
  if (options_.shared_cache.enabled) {
    shared_cache_ =
        std::make_shared<expansion::SqeCache>(options_.shared_cache);
  }
}

Result<uint64_t> SnapshotRegistry::Publish(SnapshotParts parts) {
  if (parts.kb == nullptr || parts.index == nullptr) {
    return Status::InvalidArgument("snapshot publish requires a KB and index");
  }
  MutexLock publish_lock(&publish_mu_);
  if (options_.validate_on_publish) {
    Status st = parts.kb->Validate();
    if (st.ok()) st = parts.index->Validate();
    if (!st.ok()) {
      MutexLock lock(&mu_);
      ++validation_failures_;
      return st;
    }
  }
  const uint64_t epoch = next_epoch_++;
  // Engine construction (shard manifest, pruning setup) happens here, with
  // only the publish lock held: in-flight readers never wait on it.
  std::shared_ptr<const Snapshot> snapshot(
      new Snapshot(epoch, std::move(parts), shared_cache_),
      // Deferred retirement: runs wherever the last lease drops — a worker
      // finishing the final pinned request, or right below when no lease is
      // out. Free first, count second, so an observed `retired` count
      // proves the generation's memory is already released.
      [log = retire_log_](const Snapshot* s) {
        delete s;
        MutexLock lock(&log->mu);
        ++log->retired;
      });
  {
    MutexLock lock(&mu_);
    ++published_;
    // May run the previous generation's deleter inline if no lease pins
    // it; the retire log ranks above us so that nesting is legal.
    current_ = std::move(snapshot);
  }
  return epoch;
}

SnapshotLease SnapshotRegistry::Acquire() const {
  MutexLock lock(&mu_);
  ++acquires_;
  return current_;
}

SnapshotRegistryStats SnapshotRegistry::Stats() const {
  SnapshotRegistryStats stats;
  {
    MutexLock lock(&mu_);
    stats.published = published_;
    stats.validation_failures = validation_failures_;
    stats.acquires = acquires_;
    stats.current_epoch = current_ != nullptr ? current_->epoch() : 0;
  }
  {
    MutexLock lock(&retire_log_->mu);
    stats.retired = retire_log_->retired;
  }
  return stats;
}

SnapshotLoader::~SnapshotLoader() {
  if (worker_.joinable()) worker_.join();
}

Result<uint64_t> SnapshotLoader::LoadAndPublish(const Job& job) {
  Result<kb::KnowledgeBase> kb =
      kb::KnowledgeBase::FromSnapshotFile(job.kb_path, job.load_mode);
  if (!kb.ok()) return std::move(kb).status();
  Result<index::InvertedIndex> index =
      index::InvertedIndex::FromSnapshotFile(job.index_path, job.load_mode);
  if (!index.ok()) return std::move(index).status();

  SnapshotParts parts;
  parts.kb = std::make_unique<kb::KnowledgeBase>(std::move(kb).value());
  parts.index =
      std::make_unique<index::InvertedIndex>(std::move(index).value());
  parts.analyzer = std::make_unique<text::Analyzer>();
  if (job.build_linker) {
    parts.surface_forms = std::make_unique<entity::SurfaceFormDictionary>(
        entity::SurfaceFormDictionary::FromKbTitles(*parts.kb,
                                                    *parts.analyzer));
    parts.linker = std::make_unique<entity::EntityLinker>(
        parts.surface_forms.get(), parts.analyzer.get());
  }
  parts.engine_config = job.engine_config;
  return registry_->Publish(std::move(parts));
}

void SnapshotLoader::Start(Job job) {
  SQE_CHECK_MSG(!worker_.joinable(),
                "SnapshotLoader already has a job in flight");
  result_.reset();
  worker_ = std::thread(
      [this, job = std::move(job)] { result_.emplace(LoadAndPublish(job)); });
}

Result<uint64_t> SnapshotLoader::Wait() {
  SQE_CHECK_MSG(worker_.joinable(), "SnapshotLoader::Wait without a job");
  worker_.join();
  worker_ = std::thread();
  SQE_CHECK(result_.has_value());
  Result<uint64_t> outcome = std::move(*result_);
  result_.reset();
  return outcome;
}

}  // namespace sqe::serving
