// ServingRequest / ServingResponse / ServingCall: the request surface of
// the serving front-end.
//
// Submit() hands back a shared ServingCall — a one-shot future the
// submitter Wait()s on and may Cancel() at any time. The front-end resolves
// every call exactly once, with one of:
//   OK                 — completed; response.result is the engine's output,
//                        bit-identical to a bare SqeEngine::RunSqe
//   ResourceExhausted  — rejected at admission (queue full, or estimated
//                        queue wait exceeds the request's deadline)
//   FailedPrecondition — rejected because the front-end is shutting down
//                        (at submit, or drained from the queue)
//   DeadlineExceeded   — expired at a cooperative checkpoint
//   Cancelled          — the token fired before a checkpoint
#ifndef SQE_SERVING_REQUEST_H_
#define SQE_SERVING_REQUEST_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "kb/types.h"
#include "serving/deadline.h"
#include "sqe/run_control.h"
#include "sqe/sqe_engine.h"

namespace sqe::serving {

class Snapshot;  // serving/snapshot_registry.h

/// Two lanes: interactive requests are always dequeued before batch ones
/// (FIFO within a lane). Queue capacity is shared.
enum class RequestPriority : int {
  kInteractive = 0,
  kBatch = 1,
};

struct ServingRequest {
  std::string text;
  std::vector<kb::ArticleId> query_nodes;
  expansion::MotifConfig motifs = expansion::MotifConfig::Both();
  size_t k = 100;
  RequestPriority priority = RequestPriority::kInteractive;
  Deadline deadline;  // infinite by default
};

struct ServingResponse {
  Status status;
  /// Valid iff status.ok().
  expansion::SqeRunResult result;
  /// The last checkpoint the run reached: kDone when completed, the failing
  /// phase when expired/cancelled, kPreAnalysis when never executed
  /// (rejected at admission or drained at shutdown).
  expansion::RunPhase phase_reached = expansion::RunPhase::kPreAnalysis;
  /// Admission → dequeue, per the front-end's clock. Zero when rejected.
  double queue_ms = 0.0;
  /// Admission → resolution, per the front-end's clock.
  double total_ms = 0.0;
  /// The snapshot epoch this request was pinned to at admission (and served
  /// from, when it executed). 0 on an engine-backed front-end with no
  /// registry, and for registry-backed rejections that never held a lease.
  uint64_t epoch = 0;
};

/// One-shot future for a submitted request. Created and resolved only by
/// ServingFrontend; submitters hold it via shared_ptr, so it outlives both
/// the queue entry and an early-exiting submitter.
class ServingCall {
 public:
  SQE_DISALLOW_COPY_AND_ASSIGN(ServingCall);

  uint64_t id() const { return id_; }
  const ServingRequest& request() const { return request_; }

  /// Cooperative cancellation: flips the token the engine checks at phase
  /// boundaries. Safe from any thread, any number of times, before or
  /// during execution; a call that already resolved is unaffected.
  void Cancel() { cancel_flag_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_flag_.load(std::memory_order_acquire);
  }

  /// Blocks until the front-end resolves this call, then returns the
  /// response (stable for the call's lifetime; repeat calls return the
  /// same reference without blocking).
  const ServingResponse& Wait() SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_, [this]() SQE_REQUIRES(mu_) { return done_; });
    return response_;
  }

  bool resolved() const SQE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return done_;
  }

 private:
  friend class ServingFrontend;

  ServingCall(uint64_t id, ServingRequest request,
              Clock::TimePoint submit_time)
      : id_(id), request_(std::move(request)), submit_time_(submit_time) {}

  /// Called exactly once by the front-end.
  void Resolve(ServingResponse response) SQE_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      SQE_CHECK_MSG(!done_, "ServingCall resolved twice");
      response_ = std::move(response);
      done_ = true;
    }
    cv_.SignalAll();
  }

  const uint64_t id_;
  const ServingRequest request_;
  const Clock::TimePoint submit_time_;
  std::atomic<bool> cancel_flag_{false};
  /// The epoch lease pinned at admission on a registry-backed front-end
  /// (null otherwise). Written by Submit before the call is shared, read
  /// and released by exactly one resolver (the queue hand-off orders both),
  /// so it needs no lock. Released at resolution — not destruction — so a
  /// submitter sitting on a resolved call cannot delay epoch retirement.
  std::shared_ptr<const Snapshot> snapshot_;

  mutable Mutex mu_{"serving.call", kLockRankServingCall};
  CondVar cv_;
  bool done_ SQE_GUARDED_BY(mu_) = false;
  ServingResponse response_ SQE_GUARDED_BY(mu_);
};

}  // namespace sqe::serving

#endif  // SQE_SERVING_REQUEST_H_
