// SnapshotRegistry: RCU/epoch-based hot-swap of the serving data plane.
//
// A production service re-ingests Wikipedia dumps while serving traffic;
// everything below the front-end assumes an immutable KB + index. The
// registry reconciles the two with classic read-copy-update epochs:
//
//   * A Snapshot is one immutable serving generation — KB, index, linking
//     machinery, and the SqeEngine built over them (which carries the shard
//     manifest and derived caches). Nothing in a published Snapshot ever
//     mutates.
//   * Publish() validates the parts (reusing the snapshot Validate()
//     machinery), builds the engine, and atomically swaps the "current"
//     pointer. Publishing never blocks readers: the expensive work happens
//     under a dedicated publish lock that Acquire() does not take.
//   * Acquire() hands out a SnapshotLease — a shared_ptr that pins the
//     epoch for as long as the caller holds it. ServingFrontend acquires
//     one lease per request at admission and drops it at resolution, so a
//     request observes exactly one epoch for its whole lifetime no matter
//     how many publishes land while it is queued or executing.
//   * Retirement is deferred and automatic: when the last lease on an old
//     epoch drains, the shared_ptr deleter frees the whole generation and
//     bumps the retired counter. With the front-end's accounting identity
//     (submitted == resolved once drained), `published - retired` is
//     exactly the number of epochs still referenced — the PR 5 identity
//     extended across swaps.
//
// Cross-epoch cache story: the registry can own one shared SqeCache that
// every epoch's engine borrows. Cache keys carry the epoch (see
// sqe/sqe_cache.h), so entries from a retired epoch are simply never looked
// up again and die by LRU eviction — no flush, no invalidation pass.
#ifndef SQE_SERVING_SNAPSHOT_REGISTRY_H_
#define SQE_SERVING_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "entity/entity_linker.h"
#include "entity/surface_forms.h"
#include "index/inverted_index.h"
#include "io/file.h"
#include "kb/knowledge_base.h"
#include "sqe/sqe_cache.h"
#include "sqe/sqe_engine.h"
#include "text/analyzer.h"

namespace sqe::serving {

/// The ingredients of one serving generation, transferred into the
/// registry by Publish(). `kb` and `index` are required; `analyzer` is
/// default-constructed when null; `surface_forms`/`linker` are optional
/// (manual entity selection only when absent). A supplied linker must point
/// at the supplied kb/analyzer/surface_forms — the Snapshot keeps them all
/// alive together.
struct SnapshotParts {
  std::unique_ptr<kb::KnowledgeBase> kb;
  std::unique_ptr<index::InvertedIndex> index;
  std::unique_ptr<text::Analyzer> analyzer;
  std::unique_ptr<entity::SurfaceFormDictionary> surface_forms;
  std::unique_ptr<entity::EntityLinker> linker;
  /// Engine knobs for this generation (retriever smoothing, sharding,
  /// pruning, private cache). `shared_cache`/`cache_epoch` are overwritten
  /// by the registry; set the registry-level shared cache instead.
  expansion::SqeEngineConfig engine_config;
};

/// One immutable serving generation. Published exactly once, then shared
/// read-only via SnapshotLease until the last lease drops.
class Snapshot {
 public:
  SQE_DISALLOW_COPY_AND_ASSIGN(Snapshot);

  /// Monotone generation number, 1-based in publish order.
  uint64_t epoch() const { return epoch_; }
  const expansion::SqeEngine& engine() const { return *engine_; }
  const kb::KnowledgeBase& kb() const { return *parts_.kb; }
  const index::InvertedIndex& index() const { return *parts_.index; }
  /// Null when the generation was published without a linker.
  const entity::EntityLinker* linker() const { return parts_.linker.get(); }
  size_t num_shards() const { return engine_->num_shards(); }

 private:
  friend class SnapshotRegistry;

  Snapshot(uint64_t epoch, SnapshotParts parts,
           std::shared_ptr<expansion::SqeCache> shared_cache);

  const uint64_t epoch_;
  SnapshotParts parts_;
  // Keeps the registry's shared cache alive even if a lease outlives the
  // registry itself; null when the registry has no shared cache.
  std::shared_ptr<expansion::SqeCache> shared_cache_;
  std::unique_ptr<expansion::SqeEngine> engine_;
};

/// A pinned epoch. Holding one guarantees the Snapshot (KB, index, engine,
/// cache) stays alive; dropping the last one retires the generation.
using SnapshotLease = std::shared_ptr<const Snapshot>;

struct SnapshotRegistryOptions {
  /// Run kb->Validate() + index->Validate() before accepting a publish.
  /// The registry is the last line of defense between a corrupt re-ingest
  /// and live traffic, so this defaults on; loaders that already validated
  /// (FromSnapshotFile does) may turn it off to skip the second pass.
  bool validate_on_publish = true;
  /// When `enabled`, the registry owns one epoch-keyed SqeCache shared by
  /// every generation's engine (see file comment). Otherwise each
  /// generation uses whatever its own engine_config.cache says.
  expansion::SqeCacheOptions shared_cache;
};

/// Counter snapshot of the registry's lifecycle telemetry.
struct SnapshotRegistryStats {
  uint64_t published = 0;
  uint64_t retired = 0;
  uint64_t validation_failures = 0;
  uint64_t acquires = 0;
  /// Epoch of the current generation; 0 before the first publish.
  uint64_t current_epoch = 0;
  /// Generations still pinned by at least one lease (or current).
  uint64_t live_epochs() const { return published - retired; }
};

class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(SnapshotRegistryOptions options = {});
  SQE_DISALLOW_COPY_AND_ASSIGN(SnapshotRegistry);

  /// Validates (unless configured off), builds the generation's engine,
  /// and atomically makes it current. Returns the new epoch. In-flight
  /// leases on older epochs are untouched; the previous generation retires
  /// when its last lease drops (possibly inside this call, when no lease
  /// is out). Concurrent publishes serialize; Acquire() never waits on a
  /// publish's validation or engine build.
  Result<uint64_t> Publish(SnapshotParts parts) SQE_EXCLUDES(publish_mu_);

  /// Pins and returns the current generation; null before the first
  /// publish. Wait-free apart from one leaf lock. Safe to call while
  /// holding the serving front-end's lock (the ranks encode this).
  SnapshotLease Acquire() const SQE_EXCLUDES(mu_);

  SnapshotRegistryStats Stats() const SQE_EXCLUDES(mu_);

  /// The shared epoch-keyed cache, or null when not configured. Stats-only
  /// surface for tools and benches.
  const expansion::SqeCache* shared_cache() const {
    return shared_cache_.get();
  }

 private:
  // Retirement accounting shared with every published Snapshot's deleter,
  // so it survives the registry if leases outlive it.
  struct RetireLog {
    mutable Mutex mu{"serving.registry.retire", kLockRankRegistryRetire};
    uint64_t retired SQE_GUARDED_BY(mu) = 0;
  };

  SnapshotRegistryOptions options_;
  std::shared_ptr<expansion::SqeCache> shared_cache_;  // null when disabled
  std::shared_ptr<RetireLog> retire_log_;

  // Serializes publishes; held across validate + engine build + swap so
  // epochs become current in strictly increasing order.
  mutable Mutex publish_mu_{"serving.registry.publish",
                            kLockRankSnapshotPublish};
  uint64_t next_epoch_ SQE_GUARDED_BY(publish_mu_) = 1;

  // Guards the current pointer and counters — the only lock Acquire takes.
  mutable Mutex mu_{"serving.registry", kLockRankSnapshotRegistry};
  SnapshotLease current_ SQE_GUARDED_BY(mu_);
  uint64_t published_ SQE_GUARDED_BY(mu_) = 0;
  uint64_t validation_failures_ SQE_GUARDED_BY(mu_) = 0;
  mutable uint64_t acquires_ SQE_GUARDED_BY(mu_) = 0;
};

/// Background snapshot ingestion: loads KB + index snapshot files (any
/// container version v1–v4, either LoadMode), optionally rebuilds the
/// entity-linking stack from the loaded KB's titles, and publishes the
/// result. One job at a time; the load and publish run on a background
/// thread so the serving path never blocks on dump-sized I/O.
class SnapshotLoader {
 public:
  struct Job {
    std::string kb_path;
    std::string index_path;
    io::LoadMode load_mode = io::LoadMode::kHeap;
    /// Mine surface forms from the loaded KB's titles and build a linker
    /// (the synthetic datasets' linking setup, minus alias noise).
    bool build_linker = false;
    expansion::SqeEngineConfig engine_config;
  };

  /// `registry` must outlive the loader.
  explicit SnapshotLoader(SnapshotRegistry* registry) : registry_(registry) {
    SQE_CHECK(registry != nullptr);
  }
  /// Joins an unfinished background job (discarding its outcome).
  ~SnapshotLoader();
  SQE_DISALLOW_COPY_AND_ASSIGN(SnapshotLoader);

  /// Synchronous load + publish on the calling thread.
  Result<uint64_t> LoadAndPublish(const Job& job);

  /// Starts the job on a background thread. At most one in flight; call
  /// Wait() before starting the next.
  void Start(Job job);
  /// Joins the background job and returns its outcome (the thread join is
  /// the synchronization — no lock needed on the result slot).
  Result<uint64_t> Wait();

 private:
  SnapshotRegistry* registry_;
  std::thread worker_;
  std::optional<Result<uint64_t>> result_;
};

}  // namespace sqe::serving

#endif  // SQE_SERVING_SNAPSHOT_REGISTRY_H_
