// ServingFrontend: the async serving front-end over SqeEngine — a bounded
// request queue with admission control, priority lanes, per-request
// deadlines, cooperative cancellation, and drain-on-shutdown semantics.
//
// Shape (DESIGN.md §7c): N worker threads pop from a two-lane
// BoundedLaneQueue (interactive before batch) and run each request through
// SqeEngine's RunControl path, which checks deadline/cancellation at phase
// boundaries. Submit() never blocks: it either admits the request or
// resolves it immediately with a rejection status. Every submitted request
// resolves exactly once — completed, rejected, expired, or cancelled.
//
// Admission control, evaluated atomically with the push:
//   1. shutting down                       -> FailedPrecondition
//   2. registry mode, nothing published    -> FailedPrecondition
//   3. queue full (depth == capacity)      -> ResourceExhausted
//   4. estimated wait exceeds the deadline -> ResourceExhausted, where
//      estimated_wait = service_estimate * ceil(depth / num_workers)
//      with service_estimate an EMA of measured service times seeded by
//      config.initial_service_estimate (0 disables the test until the
//      first completion is measured).
//
// Shutdown drains deterministically: queued requests are rejected (never
// run), in-flight requests finish, expire, or observe cancellation at
// their next checkpoint; Shutdown() returns after the workers exit.
//
// All timing flows through the injected Clock, so every admission,
// deadline, and latency path is reachable from a FakeClock test with zero
// real sleeps.
#ifndef SQE_SERVING_FRONTEND_H_
#define SQE_SERVING_FRONTEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"
#include "retrieval/retriever.h"
#include "serving/request.h"
#include "serving/snapshot_registry.h"
#include "serving/stats.h"
#include "sqe/sqe_engine.h"

namespace sqe::serving {

struct ServingFrontendConfig {
  /// Worker threads executing requests. >= 1.
  size_t num_workers = 2;
  /// Bounded queue capacity, shared across both priority lanes.
  size_t queue_capacity = 64;
  /// Seed for the per-request service-time estimate the estimated-wait
  /// admission test uses. Zero means "unknown": the test is skipped until
  /// a completion has been measured (or forever, if adaptation is off).
  Clock::Duration initial_service_estimate = Clock::Duration::zero();
  /// Fold measured service times into the estimate (EMA, alpha = 1/4).
  /// Tests that need a fixed, predictable estimate turn this off.
  bool adapt_service_estimate = true;
  /// Time source; null selects the process-wide SystemClock.
  const Clock* clock = nullptr;
  /// Test-only observer forwarded into every request's RunControl hook:
  /// called at each checkpoint, before its cancel/deadline test, from the
  /// executing worker's thread. Must be thread-safe. Production callers
  /// leave it empty.
  std::function<void(uint64_t request_id, expansion::RunPhase phase)>
      phase_hook;
};

class ServingFrontend {
 public:
  /// `engine` must outlive the front-end. Workers start immediately.
  ServingFrontend(const expansion::SqeEngine* engine,
                  ServingFrontendConfig config = {});
  /// Registry-backed mode: every request pins the registry's current
  /// snapshot at admission and executes against that epoch's engine, so
  /// Publish() can land new generations mid-flight without a response ever
  /// mixing epochs. Requests submitted before the first publish are
  /// rejected (FailedPrecondition, counted in rejected_no_snapshot).
  /// `registry` must outlive the front-end; destroy the front-end (or call
  /// Shutdown()) before the registry so workers drop their leases first.
  ServingFrontend(const SnapshotRegistry* registry,
                  ServingFrontendConfig config = {});
  /// Implies Shutdown().
  ~ServingFrontend();
  SQE_DISALLOW_COPY_AND_ASSIGN(ServingFrontend);

  /// Non-blocking admission. The returned call is already resolved when
  /// the request was rejected; otherwise it resolves when a worker
  /// finishes (or expires/cancels) it, or when Shutdown() drains it.
  std::shared_ptr<ServingCall> Submit(ServingRequest request)
      SQE_EXCLUDES(mu_);

  /// Drain-on-shutdown: stops admission, rejects everything still queued
  /// (deterministically — queued requests never start once shutdown
  /// begins), lets in-flight requests finish or expire, and joins the
  /// workers. Idempotent and thread-safe; concurrent callers all return
  /// after the drain completes.
  void Shutdown() SQE_EXCLUDES(mu_);

  ServingStats Stats() const SQE_EXCLUDES(mu_);

  size_t num_workers() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }

 private:
  ServingFrontend(const expansion::SqeEngine* engine,
                  const SnapshotRegistry* registry,
                  ServingFrontendConfig config);

  void WorkerLoop();
  void Execute(const std::shared_ptr<ServingCall>& call,
               retrieval::RetrieverScratch* scratch) SQE_EXCLUDES(mu_);
  /// Resolves a call the front-end rejected without executing.
  void ResolveRejected(const std::shared_ptr<ServingCall>& call,
                       Status status) const;

  // Exactly one of the two is set: a fixed engine, or a registry whose
  // current snapshot is pinned per request.
  const expansion::SqeEngine* engine_;
  const SnapshotRegistry* registry_;
  ServingFrontendConfig config_;
  const Clock* clock_;
  BoundedLaneQueue<std::shared_ptr<ServingCall>> queue_;

  mutable Mutex mu_{"serving.frontend", kLockRankServingFrontend};
  bool shutting_down_ SQE_GUARDED_BY(mu_) = false;
  ServingStats counters_ SQE_GUARDED_BY(mu_);  // queue depths filled at snapshot
  /// EMA of measured service time, seconds; < 0 means "no estimate yet".
  double service_estimate_seconds_ SQE_GUARDED_BY(mu_) = -1.0;

  std::once_flag drain_once_;
  std::atomic<uint64_t> next_id_{1};
  std::vector<std::thread> workers_;
};

}  // namespace sqe::serving

#endif  // SQE_SERVING_FRONTEND_H_
