// EntityLinker: Dexter-style spotting + disambiguation, with the Alchemy
// NER fallback, producing the paper's "query nodes".
//
// Pipeline (matching Section 3 of the paper):
//  1. Spot: greedy longest-match scan of the analyzed query tokens against
//     the surface-form dictionary (prefer longer n-grams; no overlaps).
//  2. Disambiguate: pick the candidate with the highest commonness prior,
//     requiring it to clear `min_commonness`.
//  3. Fallback: if nothing was linked, run the heuristic NER over the raw
//     text and try to link each recognized mention exactly.
#ifndef SQE_ENTITY_ENTITY_LINKER_H_
#define SQE_ENTITY_ENTITY_LINKER_H_

#include <string>
#include <string_view>
#include <vector>

#include "entity/ner.h"
#include "entity/surface_forms.h"
#include "kb/knowledge_base.h"
#include "text/analyzer.h"

namespace sqe::entity {

/// A linked query entity.
struct LinkedEntity {
  kb::ArticleId article = kb::kInvalidArticle;
  double confidence = 0.0;     // the winning commonness prior
  size_t token_begin = 0;      // [begin, end) over analyzed query tokens
  size_t token_end = 0;
};

struct EntityLinkerOptions {
  /// Minimum commonness for a link to be accepted.
  double min_commonness = 0.5;
  /// Longest n-gram to try while spotting.
  size_t max_ngram = 4;
  NerOptions ner;
};

/// Stateless linker bound to a dictionary (and analyzer for the fallback).
class EntityLinker {
 public:
  /// Both pointers must outlive the linker.
  EntityLinker(const SurfaceFormDictionary* dictionary,
               const text::Analyzer* analyzer,
               EntityLinkerOptions options = {});

  /// Links entities in raw query text. Returned entities are ordered by
  /// their position; at most one link per token span, and the NER fallback
  /// additionally emits at most one link per article (highest commonness
  /// wins when several mentions resolve to the same article).
  std::vector<LinkedEntity> Link(std::string_view raw_query) const;

  /// Links over pre-analyzed tokens (no NER fallback possible).
  std::vector<LinkedEntity> LinkTokens(
      const std::vector<std::string>& analyzed_tokens) const;

 private:
  const SurfaceFormDictionary* dictionary_;
  const text::Analyzer* analyzer_;
  EntityLinkerOptions options_;
};

}  // namespace sqe::entity

#endif  // SQE_ENTITY_ENTITY_LINKER_H_
