#include "entity/ner.h"

#include <cctype>

#include "text/tokenizer.h"

namespace sqe::entity {

std::vector<Mention> RecognizeMentions(std::string_view raw_text,
                                       NerOptions options) {
  std::vector<text::Token> tokens = text::Tokenize(raw_text);
  std::vector<Mention> mentions;

  auto is_capitalized = [&](const text::Token& t) {
    if (t.begin >= raw_text.size()) return false;
    unsigned char first = static_cast<unsigned char>(raw_text[t.begin]);
    return std::isupper(first) != 0;
  };

  size_t i = 0;
  while (i < tokens.size()) {
    if (!is_capitalized(tokens[i])) {
      ++i;
      continue;
    }
    size_t run_end = i;
    while (run_end + 1 < tokens.size() &&
           run_end + 1 - i + 1 <= options.max_mention_words &&
           is_capitalized(tokens[run_end + 1])) {
      ++run_end;
    }
    Mention m;
    m.begin = tokens[i].begin;
    m.end = tokens[run_end].end;
    m.text = std::string(raw_text.substr(m.begin, m.end - m.begin));
    mentions.push_back(std::move(m));
    i = run_end + 1;
  }
  return mentions;
}

}  // namespace sqe::entity
