// SurfaceFormDictionary: maps token n-grams ("surface forms") to candidate
// KB articles with commonness priors — the Dexter-style spot dictionary.
//
// In the real system this table is mined from Wikipedia anchor text; here it
// is populated from article titles plus generated aliases (including the
// noisy/ambiguous ones that give the automatic linker its ~80% precision).
#ifndef SQE_ENTITY_SURFACE_FORMS_H_
#define SQE_ENTITY_SURFACE_FORMS_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "text/analyzer.h"

namespace sqe::entity {

/// One candidate meaning of a surface form.
struct Candidate {
  kb::ArticleId article = kb::kInvalidArticle;
  /// P(article | surface form): the fraction of times this surface form
  /// refers to this article. Candidates for a form sum to 1 after Finalize().
  double commonness = 0.0;
};

/// Append-then-finalize dictionary of surface forms.
class SurfaceFormDictionary {
 public:
  SurfaceFormDictionary() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(SurfaceFormDictionary);
  SurfaceFormDictionary(SurfaceFormDictionary&&) = default;
  SurfaceFormDictionary& operator=(SurfaceFormDictionary&&) = default;

  /// Records `count` observations of `analyzed_tokens` referring to
  /// `target`. Tokens must already be analyzer output.
  void Add(const std::vector<std::string>& analyzed_tokens,
           kb::ArticleId target, double count = 1.0);

  /// Normalizes commonness per form and sorts candidates by descending
  /// commonness. Must be called once before Lookup.
  void Finalize();

  /// Candidates for an exact analyzed-token n-gram; empty span if unknown.
  std::span<const Candidate> Lookup(
      std::span<const std::string> analyzed_tokens) const;

  /// Longest n-gram length present in the dictionary.
  size_t MaxFormLength() const { return max_form_length_; }
  size_t NumForms() const { return forms_.size(); }

  /// Builds a dictionary whose surface forms are the KB article titles
  /// (analyzed). The synthetic generator then layers alias noise on top.
  static SurfaceFormDictionary FromKbTitles(const kb::KnowledgeBase& kb,
                                            const text::Analyzer& analyzer);

 private:
  static std::string KeyOf(std::span<const std::string> tokens);

  std::unordered_map<std::string, std::vector<Candidate>> forms_;
  size_t max_form_length_ = 0;
  bool finalized_ = false;
};

}  // namespace sqe::entity

#endif  // SQE_ENTITY_SURFACE_FORMS_H_
