// HeuristicNer: the Alchemy-style fallback entity recognizer.
//
// The paper pre-processes with Alchemy when Dexter cannot link a query:
// Alchemy *identifies* entity mentions without linking them. Our stand-in
// finds maximal runs of capitalized words in the raw (pre-lower-casing)
// text — the dominant signal a statistical NER uses for short queries.
#ifndef SQE_ENTITY_NER_H_
#define SQE_ENTITY_NER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqe::entity {

/// An unlinked entity mention: raw text span.
struct Mention {
  std::string text;    // the mention as it appeared
  size_t begin = 0;    // byte offsets into the original string
  size_t end = 0;
};

struct NerOptions {
  size_t max_mention_words = 4;
};

/// Extracts capitalized-run mentions from raw text.
std::vector<Mention> RecognizeMentions(std::string_view raw_text,
                                       NerOptions options = {});

}  // namespace sqe::entity

#endif  // SQE_ENTITY_NER_H_
