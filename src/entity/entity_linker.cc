#include "entity/entity_linker.h"

#include <algorithm>

namespace sqe::entity {

EntityLinker::EntityLinker(const SurfaceFormDictionary* dictionary,
                           const text::Analyzer* analyzer,
                           EntityLinkerOptions options)
    : dictionary_(dictionary), analyzer_(analyzer), options_(options) {
  SQE_CHECK(dictionary != nullptr && analyzer != nullptr);
}

std::vector<LinkedEntity> EntityLinker::LinkTokens(
    const std::vector<std::string>& tokens) const {
  std::vector<LinkedEntity> out;
  const size_t n = tokens.size();
  const size_t max_len =
      std::min(options_.max_ngram, dictionary_->MaxFormLength());
  size_t i = 0;
  while (i < n) {
    bool linked = false;
    for (size_t len = std::min(max_len, n - i); len >= 1 && !linked; --len) {
      std::span<const std::string> span(tokens.data() + i, len);
      std::span<const Candidate> candidates = dictionary_->Lookup(span);
      if (candidates.empty()) continue;
      // Candidates are sorted by descending commonness.
      const Candidate& best = candidates.front();
      if (best.commonness >= options_.min_commonness) {
        out.push_back(LinkedEntity{best.article, best.commonness, i, i + len});
        i += len;
        linked = true;
      }
    }
    if (!linked) ++i;
  }
  return out;
}

std::vector<LinkedEntity> EntityLinker::Link(std::string_view raw_query) const {
  std::vector<std::string> tokens = analyzer_->Analyze(raw_query);
  std::vector<LinkedEntity> linked = LinkTokens(tokens);
  if (!linked.empty()) return linked;

  // Dexter found nothing: fall back to Alchemy-style NER mentions and try
  // to link each one exactly. Each link carries the mention's real token
  // span, and mentions resolving to the same article collapse into one link
  // keeping the highest-commonness hit.
  for (const Mention& mention :
       RecognizeMentions(raw_query, options_.ner)) {
    std::vector<std::string> mention_tokens = analyzer_->Analyze(mention.text);
    if (mention_tokens.empty()) continue;
    std::span<const Candidate> candidates =
        dictionary_->Lookup(std::span<const std::string>(mention_tokens));
    if (candidates.empty()) continue;
    const Candidate& best = candidates.front();
    // The NER path is a last resort; accept the top candidate even below
    // the commonness threshold (matching the paper's lenient fallback).
    //
    // The mention's span over the analyzed query tokens: mentions start at a
    // word boundary and the analyzer is prefix-stable there, so the token
    // count of the raw prefix is the index of the mention's first token.
    const size_t token_begin =
        analyzer_->Analyze(raw_query.substr(0, mention.begin)).size();
    const LinkedEntity entity{best.article, best.commonness, token_begin,
                              token_begin + mention_tokens.size()};
    bool duplicate = false;
    for (LinkedEntity& existing : linked) {
      if (existing.article != entity.article) continue;
      duplicate = true;
      if (entity.confidence > existing.confidence) existing = entity;
      break;
    }
    if (!duplicate) linked.push_back(entity);
  }
  return linked;
}

}  // namespace sqe::entity
