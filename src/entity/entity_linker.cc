#include "entity/entity_linker.h"

#include <algorithm>

namespace sqe::entity {

EntityLinker::EntityLinker(const SurfaceFormDictionary* dictionary,
                           const text::Analyzer* analyzer,
                           EntityLinkerOptions options)
    : dictionary_(dictionary), analyzer_(analyzer), options_(options) {
  SQE_CHECK(dictionary != nullptr && analyzer != nullptr);
}

std::vector<LinkedEntity> EntityLinker::LinkTokens(
    const std::vector<std::string>& tokens) const {
  std::vector<LinkedEntity> out;
  const size_t n = tokens.size();
  const size_t max_len =
      std::min(options_.max_ngram, dictionary_->MaxFormLength());
  size_t i = 0;
  while (i < n) {
    bool linked = false;
    for (size_t len = std::min(max_len, n - i); len >= 1 && !linked; --len) {
      std::span<const std::string> span(tokens.data() + i, len);
      std::span<const Candidate> candidates = dictionary_->Lookup(span);
      if (candidates.empty()) continue;
      // Candidates are sorted by descending commonness.
      const Candidate& best = candidates.front();
      if (best.commonness >= options_.min_commonness) {
        out.push_back(LinkedEntity{best.article, best.commonness, i, i + len});
        i += len;
        linked = true;
      }
    }
    if (!linked) ++i;
  }
  return out;
}

std::vector<LinkedEntity> EntityLinker::Link(std::string_view raw_query) const {
  std::vector<std::string> tokens = analyzer_->Analyze(raw_query);
  std::vector<LinkedEntity> linked = LinkTokens(tokens);
  if (!linked.empty()) return linked;

  // Dexter found nothing: fall back to Alchemy-style NER mentions and try
  // to link each one exactly.
  for (const Mention& mention :
       RecognizeMentions(raw_query, options_.ner)) {
    std::vector<std::string> mention_tokens = analyzer_->Analyze(mention.text);
    if (mention_tokens.empty()) continue;
    std::span<const Candidate> candidates =
        dictionary_->Lookup(std::span<const std::string>(mention_tokens));
    if (candidates.empty()) continue;
    const Candidate& best = candidates.front();
    // The NER path is a last resort; accept the top candidate even below
    // the commonness threshold (matching the paper's lenient fallback).
    linked.push_back(LinkedEntity{best.article, best.commonness, 0, 0});
  }
  return linked;
}

}  // namespace sqe::entity
