#include "entity/surface_forms.h"

#include <algorithm>

namespace sqe::entity {

std::string SurfaceFormDictionary::KeyOf(
    std::span<const std::string> tokens) {
  std::string key;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) key.push_back('\x1f');  // unit separator: never in tokens
    key += tokens[i];
  }
  return key;
}

void SurfaceFormDictionary::Add(
    const std::vector<std::string>& analyzed_tokens, kb::ArticleId target,
    double count) {
  SQE_CHECK_MSG(!finalized_, "Add after Finalize");
  if (analyzed_tokens.empty()) return;
  std::string key = KeyOf(analyzed_tokens);
  auto& candidates = forms_[std::move(key)];
  for (Candidate& c : candidates) {
    if (c.article == target) {
      c.commonness += count;
      return;
    }
  }
  candidates.push_back(Candidate{target, count});
  max_form_length_ = std::max(max_form_length_, analyzed_tokens.size());
}

void SurfaceFormDictionary::Finalize() {
  for (auto& [key, candidates] : forms_) {
    double total = 0.0;
    for (const Candidate& c : candidates) total += c.commonness;
    if (total > 0.0) {
      for (Candidate& c : candidates) c.commonness /= total;
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.commonness != b.commonness) {
                  return a.commonness > b.commonness;
                }
                return a.article < b.article;
              });
  }
  finalized_ = true;
}

std::span<const Candidate> SurfaceFormDictionary::Lookup(
    std::span<const std::string> analyzed_tokens) const {
  SQE_CHECK_MSG(finalized_, "Lookup before Finalize");
  if (analyzed_tokens.empty()) return {};
  auto it = forms_.find(KeyOf(analyzed_tokens));
  if (it == forms_.end()) return {};
  return std::span<const Candidate>(it->second);
}

SurfaceFormDictionary SurfaceFormDictionary::FromKbTitles(
    const kb::KnowledgeBase& kb, const text::Analyzer& analyzer) {
  SurfaceFormDictionary dict;
  for (size_t a = 0; a < kb.NumArticles(); ++a) {
    kb::ArticleId id = static_cast<kb::ArticleId>(a);
    std::vector<std::string> tokens = analyzer.Analyze(kb.ArticleTitle(id));
    if (!tokens.empty()) dict.Add(tokens, id);
  }
  return dict;
}

}  // namespace sqe::entity
