// sqe_tool: command-line front end for the SQE library's data pipeline.
//
//   sqe_tool gen-dump <out.dump>              generate a synthetic world and
//                                             write it as dump-lite text
//   sqe_tool compile <in.dump> <out.snap>     parse dump-lite, validate, and
//                                             write a CRC-protected snapshot
//   sqe_tool kb-stats <in.dump|in.snap>       print graph statistics
//   sqe_tool motifs <in.*> <article title>    print the query graph for an
//                                             article (both motifs)
//   sqe_tool batch [num_threads] [--cache] [--shards N]
//                                             expand+retrieve the synthetic
//                                             query set concurrently and
//                                             report throughput (smoke test
//                                             for the batch pipeline); with
//                                             --cache, run the batch twice
//                                             (cold fill + warm replay) and
//                                             print cache counters — both
//                                             digests must match; with
//                                             --shards N, score each query
//                                             across N index shards — the
//                                             digest must equal the
//                                             unsharded run's; with --load
//                                             heap|mapped, round-trip KB +
//                                             index through snapshot files
//                                             and run against the reloaded
//                                             structures — the digest must
//                                             not change; --codec raw|packed
//                                             picks the index snapshot
//                                             version for that round trip
//                                             (v3 raw arrays vs v4
//                                             bit-packed blocks) — the
//                                             digest must not change either
//   sqe_tool index shard-info <S> [index.snap]
//                                             split the index (a snapshot
//                                             file, or the synthetic
//                                             dataset's when omitted) into
//                                             S shards and dump the
//                                             partition: doc ranges,
//                                             per-shard docs/tokens/terms
//                                             and serialized sizes
//   sqe_tool index stats [index.snap]         posting-compression report:
//                                             aggregate raw vs packed
//                                             region bytes, per-block
//                                             doc/freq bit-width
//                                             histograms, the heaviest
//                                             terms' per-term ratios, and
//                                             the SIMD unpack tier in use
//
//   sqe_tool serve-sim [--workers N] [--capacity C] [--deadline-ms D]
//                      [--batch-every K] [--repeat R] [--shards S]
//                      [--swap E]
//                                             replay the synthetic query set
//                                             through the async serving
//                                             front-end and report latency
//                                             percentiles plus the
//                                             admission/expiry accounting
//                                             (completed + expired +
//                                             cancelled + rejected must sum
//                                             to submitted, exit 2 if not);
//                                             with --swap E, serve through a
//                                             SnapshotRegistry and publish E
//                                             additional snapshot epochs
//                                             mid-flight — every response
//                                             must match its pinned epoch's
//                                             bare-engine oracle bit for
//                                             bit, and superseded epochs
//                                             must retire once the
//                                             front-end drains (exit 2 on
//                                             any violation)
//
// Exit codes: 0 success, 1 usage, 2 data error (message on stderr).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/cpu_dispatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/postings_codec.h"
#include "index/sharded_index.h"
#include "io/file.h"
#include "io/snapshot_format.h"
#include "kb/dump_loader.h"
#include "kb/kb_stats.h"
#include "kb/knowledge_base.h"
#include "retrieval/result.h"
#include "serving/frontend.h"
#include "serving/snapshot_registry.h"
#include "sqe/motif_finder.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"
#include "synth/world.h"

namespace {

using namespace sqe;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

// Loads a KB from either format: snapshots begin with the binary magic, so
// try the snapshot reader first and fall back to dump-lite text.
Result<kb::KnowledgeBase> LoadAny(const std::string& path) {
  auto snapshot = kb::KnowledgeBase::FromSnapshotFile(path);
  if (snapshot.ok()) return snapshot;
  return kb::LoadDumpFromFile(path);
}

int GenDump(const std::string& out_path) {
  synth::WorldOptions options;
  options.num_topics = 8;
  options.clusters_per_topic = 6;
  synth::World world = synth::World::Generate(options);
  std::string dump = kb::WriteDumpToString(world.kb);
  Status status = io::WriteStringToFile(out_path, dump);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu articles / %zu categories to %s (%zu bytes)\n",
              world.kb.NumArticles(), world.kb.NumCategories(),
              out_path.c_str(), dump.size());
  return 0;
}

int Compile(const std::string& in_path, const std::string& out_path) {
  auto kb = kb::LoadDumpFromFile(in_path);
  if (!kb.ok()) return Fail(kb.status());
  Status status = kb.value().SaveToFile(out_path);
  if (!status.ok()) return Fail(status);
  std::printf("compiled %s -> %s (%zu articles, %zu links)\n",
              in_path.c_str(), out_path.c_str(), kb.value().NumArticles(),
              kb.value().NumArticleLinks());
  return 0;
}

int KbStats(const std::string& path) {
  auto kb = LoadAny(path);
  if (!kb.ok()) return Fail(kb.status());
  std::printf("%s\n", kb::ComputeKbStats(kb.value()).ToString().c_str());
  return 0;
}

int Motifs(const std::string& path, const std::string& title) {
  auto kb_or = LoadAny(path);
  if (!kb_or.ok()) return Fail(kb_or.status());
  const kb::KnowledgeBase& kb = kb_or.value();
  kb::ArticleId article = kb.FindArticle(title);
  if (article == kb::kInvalidArticle) {
    return Fail(Status::NotFound("article '" + title + "'"));
  }
  expansion::MotifFinder finder(&kb);
  std::vector<kb::ArticleId> nodes = {article};
  expansion::QueryGraph graph =
      finder.BuildQueryGraph(nodes, expansion::MotifConfig::Both());
  std::printf("query graph for [%s]: %zu expansion nodes, %llu motifs\n",
              title.c_str(), graph.expansion_nodes.size(),
              static_cast<unsigned long long>(graph.total_motifs));
  for (const expansion::ExpansionNode& node : graph.expansion_nodes) {
    std::printf("  |m_a|=%-3u (T=%u S=%u)  %s\n", node.motif_count,
                node.triangular_count, node.square_count,
                std::string(kb.ArticleTitle(node.article)).c_str());
  }
  return 0;
}

// Scheduling-independent digest of a batch's rankings: runs at different
// thread counts (or cached vs uncached) can be diffed for the determinism
// guarantee.
uint64_t RankingDigest(const std::vector<expansion::SqeRunResult>& results,
                       size_t* total_results) {
  uint64_t digest = 1469598103934665603ull;  // FNV-1a
  *total_results = 0;
  for (const expansion::SqeRunResult& r : results) {
    for (const retrieval::ScoredDoc& sd : r.results) {
      digest = (digest ^ sd.doc) * 1099511628211ull;
      ++*total_results;
    }
  }
  return digest;
}

// How `batch` obtains its KB + index: straight from the builder, or round-
// tripped through a v3 snapshot file and loaded back in the given mode. CI
// diffs the digests across all three — the load path must be invisible to
// ranking.
enum class BatchLoad { kDirect, kHeap, kMapped };

int Batch(size_t num_threads, bool with_cache, size_t num_shards,
          bool with_prune, BatchLoad load, uint32_t index_version) {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());

  const kb::KnowledgeBase* kb = &world.kb;
  const index::InvertedIndex* index = &dataset.index;
  kb::KnowledgeBase loaded_kb;
  index::InvertedIndex loaded_index;
  if (load != BatchLoad::kDirect) {
    const io::LoadMode mode = load == BatchLoad::kMapped
                                  ? io::LoadMode::kZeroCopy
                                  : io::LoadMode::kHeap;
    const std::string kb_path = StrFormat("/tmp/sqe_tool_batch_%d_kb.snap",
                                          static_cast<int>(::getpid()));
    const std::string index_path = StrFormat(
        "/tmp/sqe_tool_batch_%d_index.snap", static_cast<int>(::getpid()));
    Status saved = world.kb.SaveToFile(kb_path);
    if (saved.ok()) saved = dataset.index.SaveToFile(index_path, index_version);
    if (!saved.ok()) return Fail(saved);
    auto kb_or = kb::KnowledgeBase::FromSnapshotFile(kb_path, mode);
    auto index_or = index::InvertedIndex::FromSnapshotFile(index_path, mode);
    std::remove(kb_path.c_str());
    std::remove(index_path.c_str());
    if (!kb_or.ok()) return Fail(kb_or.status());
    if (!index_or.ok()) return Fail(index_or.status());
    loaded_kb = std::move(kb_or).value();
    loaded_index = std::move(index_or).value();
    kb = &loaded_kb;
    index = &loaded_index;
  }

  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  config.cache.enabled = with_cache;
  config.sharding.num_shards = num_shards;
  config.pruning.enabled = with_prune;
  expansion::SqeEngine engine(kb, index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  std::vector<expansion::BatchQueryInput> batch;
  for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
    batch.push_back({q.text, q.true_entities});
  }

  ThreadPool pool(num_threads);
  // With caching on, run the batch twice: pass 1 fills (cold), pass 2 is
  // served from the cache (warm). Digests must match — the cache contract is
  // bit-identical output.
  const int passes = with_cache ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    Timer timer;
    std::vector<expansion::SqeRunResult> results =
        engine.RunBatch(batch, expansion::MotifConfig::Both(), 100, &pool);
    double seconds = timer.ElapsedSeconds();
    size_t total_results = 0;
    uint64_t digest = RankingDigest(results, &total_results);
    const char* load_tag = load == BatchLoad::kDirect
                               ? ""
                               : (load == BatchLoad::kMapped ? " [mapped]"
                                                             : " [heap]");
    const char* codec_tag =
        load == BatchLoad::kDirect
            ? ""
            : (index_version >= io::kPackedPostingsSnapshotVersion
                   ? " [packed]"
                   : " [raw]");
    std::printf("batch%s%s%s: %zu queries, %zu threads, %zu shards, %.3f s "
                "(%.1f q/s), %zu results, digest %016llx\n",
                load_tag, codec_tag,
                with_cache ? (pass == 0 ? " [cold]" : " [warm]") : "",
                results.size(), num_threads, engine.num_shards(), seconds,
                static_cast<double>(results.size()) / seconds, total_results,
                static_cast<unsigned long long>(digest));
  }
  if (with_cache) {
    std::printf("%s\n", engine.cache_stats().ToString().c_str());
  }
  if (engine.sharded()) {
    std::printf("%s\n", engine.router_stats().ToString().c_str());
  }
  if (engine.pruning_enabled()) {
    std::printf("%s\n", engine.wand_stats().ToString().c_str());
  }
  return 0;
}

// Nearest-rank percentile over a sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

// Replays the synthetic query set through the serving front-end at real
// (system-clock) speed: every batch_every-th request rides the batch lane,
// each request gets deadline_ms of budget (0 = no deadline). The exercise
// is the accounting contract — every submitted request resolves exactly
// once and the status counters sum back to submitted.
int ServeSim(size_t workers, size_t capacity, double deadline_ms,
             size_t batch_every, size_t repeat, size_t num_shards,
             bool with_prune) {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());
  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  config.sharding.num_shards = num_shards;
  config.pruning.enabled = with_prune;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  serving::ServingFrontendConfig frontend_config;
  frontend_config.num_workers = workers;
  frontend_config.queue_capacity = capacity;
  serving::ServingFrontend frontend(&engine, frontend_config);
  const Clock& clock = *Clock::System();

  std::vector<std::shared_ptr<serving::ServingCall>> calls;
  for (size_t r = 0; r < repeat; ++r) {
    for (size_t i = 0; i < dataset.query_set.queries.size(); ++i) {
      const synth::GeneratedQuery& q = dataset.query_set.queries[i];
      serving::ServingRequest request;
      request.text = q.text;
      request.query_nodes = q.true_entities;
      request.k = 100;
      request.priority = (batch_every > 0 && (i % batch_every) == 0)
                             ? serving::RequestPriority::kBatch
                             : serving::RequestPriority::kInteractive;
      if (deadline_ms > 0.0) {
        request.deadline = serving::Deadline::After(
            clock, std::chrono::duration_cast<Clock::Duration>(
                       std::chrono::duration<double, std::milli>(deadline_ms)));
      }
      calls.push_back(frontend.Submit(std::move(request)));
    }
  }

  std::vector<double> completed_ms;
  for (const std::shared_ptr<serving::ServingCall>& call : calls) {
    const serving::ServingResponse& response = call->Wait();
    if (response.status.ok()) completed_ms.push_back(response.total_ms);
  }
  frontend.Shutdown();
  std::sort(completed_ms.begin(), completed_ms.end());

  serving::ServingStats stats = frontend.Stats();
  std::printf("serve-sim: %zu workers, capacity %zu, %zu shards, "
              "deadline %.1f ms\n",
              frontend.num_workers(), frontend.queue_capacity(),
              engine.num_shards(), deadline_ms);
  std::printf("%s\n", stats.ToString().c_str());
  std::printf("completed latency: p50 %.3f ms  p95 %.3f ms  (n=%zu)\n",
              Percentile(completed_ms, 0.50), Percentile(completed_ms, 0.95),
              completed_ms.size());
  if (engine.pruning_enabled()) {
    std::printf("%s\n", engine.wand_stats().ToString().c_str());
  }

  if (stats.submitted != calls.size() ||
      stats.resolved() != stats.submitted) {
    std::fprintf(stderr,
                 "error: accounting mismatch: submitted=%llu resolved=%llu "
                 "calls=%zu\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.resolved()),
                 calls.size());
    return 2;
  }
  for (const std::shared_ptr<serving::ServingCall>& call : calls) {
    if (!call->resolved()) {
      std::fprintf(stderr, "error: call %llu never resolved\n",
                   static_cast<unsigned long long>(call->id()));
      return 2;
    }
  }
  return 0;
}

// serve-sim --swap: replay the query set through a registry-backed
// front-end while publishing `swaps` new snapshot epochs mid-flight, then
// verify the hot-swap contract end to end:
//   * every OK response carries the epoch pinned at admission, and its
//     ranking (doc ids AND score bits) equals a bare engine run over that
//     epoch's configuration — zero mixed-epoch responses;
//   * the serving accounting identity closes across the swaps;
//   * once the front-end drains, every superseded epoch has retired
//     (live_epochs == 1: only the registry's current pointer remains).
// Each epoch round-trips KB + index through real snapshot files via
// SnapshotLoader (validate + load path included) and scales the retriever's
// smoothing so different epochs produce provably different score bits —
// any cross-epoch mixup fails the oracle comparison. Exit 2 on violation.
int ServeSimSwap(size_t workers, size_t capacity, double deadline_ms,
                 size_t batch_every, size_t repeat, size_t num_shards,
                 bool with_prune, size_t swaps) {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());
  const size_t num_epochs = swaps + 1;

  const std::string kb_path = StrFormat("/tmp/sqe_tool_swap_%d_kb.snap",
                                        static_cast<int>(::getpid()));
  const std::string index_path = StrFormat(
      "/tmp/sqe_tool_swap_%d_index.snap", static_cast<int>(::getpid()));
  Status saved = world.kb.SaveToFile(kb_path);
  if (saved.ok()) saved = dataset.index.SaveToFile(index_path);
  if (!saved.ok()) return Fail(saved);

  auto epoch_config = [&](size_t epoch_index) {
    expansion::SqeEngineConfig config;
    // Distinguishable epochs over the same corpus: scale the Dirichlet
    // smoothing so every epoch's score bits differ. A response matched
    // against the wrong epoch's oracle cannot pass.
    config.retriever.mu = dataset.retrieval_mu * (1.0 + 0.25 * epoch_index);
    config.sharding.num_shards = num_shards;
    config.pruning.enabled = with_prune;
    return config;
  };

  // Per-(epoch, query) oracle from bare engines over the same corpus. The
  // load-mode determinism gate proves snapshot round-trips don't move a
  // bit, so direct KB/index here equals the loader's reloaded copies.
  std::vector<std::vector<retrieval::ResultList>> oracle(num_epochs);
  for (size_t e = 0; e < num_epochs; ++e) {
    expansion::SqeEngine bare(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), epoch_config(e));
    for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
      oracle[e].push_back(
          bare.RunSqe(q.text, q.true_entities, expansion::MotifConfig::Both(),
                      100)
              .results);
    }
  }

  serving::SnapshotRegistryOptions registry_options;
  registry_options.shared_cache.enabled = true;  // epoch-keyed, spans swaps
  serving::SnapshotRegistry registry(registry_options);
  serving::SnapshotLoader loader(&registry);

  serving::ServingFrontendConfig frontend_config;
  frontend_config.num_workers = workers;
  frontend_config.queue_capacity = capacity;
  serving::ServingFrontend frontend(&registry, frontend_config);
  const Clock& clock = *Clock::System();

  // Interleave publishes with submission chunks: epoch e+1 is published,
  // then chunk e is submitted while earlier chunks may still be queued or
  // executing — the swap lands under fire.
  const size_t num_queries = dataset.query_set.queries.size();
  const size_t total = repeat * num_queries;
  const size_t chunk = (total + num_epochs - 1) / num_epochs;
  std::vector<std::shared_ptr<serving::ServingCall>> calls;
  std::vector<uint64_t> expected_epoch;  // pinned epoch by submission order
  std::vector<double> swap_ms;
  size_t submitted = 0;
  for (size_t e = 0; e < num_epochs; ++e) {
    serving::SnapshotLoader::Job job;
    job.kb_path = kb_path;
    job.index_path = index_path;
    job.engine_config = epoch_config(e);
    Timer swap_timer;
    Result<uint64_t> published = loader.LoadAndPublish(job);
    swap_ms.push_back(swap_timer.ElapsedMillis());
    if (!published.ok()) return Fail(published.status());
    const uint64_t epoch = published.value();
    for (size_t j = 0; j < chunk && submitted < total; ++j, ++submitted) {
      const size_t qi = submitted % num_queries;
      const synth::GeneratedQuery& q = dataset.query_set.queries[qi];
      serving::ServingRequest request;
      request.text = q.text;
      request.query_nodes = q.true_entities;
      request.k = 100;
      request.priority = (batch_every > 0 && (submitted % batch_every) == 0)
                             ? serving::RequestPriority::kBatch
                             : serving::RequestPriority::kInteractive;
      if (deadline_ms > 0.0) {
        request.deadline = serving::Deadline::After(
            clock, std::chrono::duration_cast<Clock::Duration>(
                       std::chrono::duration<double, std::milli>(deadline_ms)));
      }
      calls.push_back(frontend.Submit(std::move(request)));
      expected_epoch.push_back(epoch);
    }
  }

  size_t mixed = 0, mismatched = 0;
  std::vector<size_t> per_epoch_ok(num_epochs + 1, 0);
  std::vector<double> completed_ms;
  for (size_t i = 0; i < calls.size(); ++i) {
    const serving::ServingResponse& response = calls[i]->Wait();
    if (!response.status.ok()) continue;
    completed_ms.push_back(response.total_ms);
    if (response.epoch != expected_epoch[i]) {
      ++mixed;
      continue;
    }
    per_epoch_ok[response.epoch] += 1;
    const retrieval::ResultList& want =
        oracle[response.epoch - 1][i % num_queries];
    const retrieval::ResultList& got = response.result.results;
    bool equal = want.size() == got.size();
    for (size_t r = 0; equal && r < want.size(); ++r) {
      equal = want[r].doc == got[r].doc && want[r].score == got[r].score;
    }
    if (!equal) ++mismatched;
  }
  frontend.Shutdown();
  std::remove(kb_path.c_str());
  std::remove(index_path.c_str());
  std::sort(completed_ms.begin(), completed_ms.end());

  serving::ServingStats stats = frontend.Stats();
  serving::SnapshotRegistryStats registry_stats = registry.Stats();
  std::printf("serve-sim --swap: %zu workers, capacity %zu, %zu shards, "
              "%zu epochs over %zu requests\n",
              frontend.num_workers(), frontend.queue_capacity(), num_shards,
              num_epochs, calls.size());
  std::printf("%s\n", stats.ToString().c_str());
  std::printf("registry: published=%llu retired=%llu live=%llu acquires=%llu "
              "current epoch %llu\n",
              static_cast<unsigned long long>(registry_stats.published),
              static_cast<unsigned long long>(registry_stats.retired),
              static_cast<unsigned long long>(registry_stats.live_epochs()),
              static_cast<unsigned long long>(registry_stats.acquires),
              static_cast<unsigned long long>(registry_stats.current_epoch));
  for (size_t e = 1; e <= num_epochs; ++e) {
    std::printf("  epoch %zu: %zu ok responses, publish %.3f ms\n", e,
                per_epoch_ok[e], swap_ms[e - 1]);
  }
  std::printf("completed latency: p50 %.3f ms  p95 %.3f ms  (n=%zu)\n",
              Percentile(completed_ms, 0.50), Percentile(completed_ms, 0.95),
              completed_ms.size());
  if (const expansion::SqeCache* cache = registry.shared_cache()) {
    std::printf("shared cache %s\n", cache->Stats().ToString().c_str());
  }

  if (mixed > 0 || mismatched > 0) {
    std::fprintf(stderr,
                 "error: %zu mixed-epoch and %zu oracle-mismatched "
                 "responses\n",
                 mixed, mismatched);
    return 2;
  }
  if (stats.submitted != calls.size() ||
      stats.resolved() != stats.submitted) {
    std::fprintf(stderr,
                 "error: accounting mismatch: submitted=%llu resolved=%llu "
                 "calls=%zu\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.resolved()),
                 calls.size());
    return 2;
  }
  for (const std::shared_ptr<serving::ServingCall>& call : calls) {
    if (!call->resolved()) {
      std::fprintf(stderr, "error: call %llu never resolved\n",
                   static_cast<unsigned long long>(call->id()));
      return 2;
    }
  }
  // Deferred retirement closed: the front-end drained, so every lease is
  // back and only the registry's current pointer keeps an epoch alive.
  if (registry_stats.published != num_epochs ||
      registry_stats.live_epochs() != 1) {
    std::fprintf(stderr,
                 "error: retirement mismatch: published=%llu retired=%llu\n",
                 static_cast<unsigned long long>(registry_stats.published),
                 static_cast<unsigned long long>(registry_stats.retired));
    return 2;
  }
  return 0;
}

// Splits an index into S shards and dumps the partition: the manifest's doc
// ranges plus per-shard document/token/term counts and serialized snapshot
// sizes — the debugging view for "who owns which document".
int IndexShardInfo(size_t num_shards, const char* snapshot_path) {
  index::InvertedIndex loaded;
  const index::InvertedIndex* full = nullptr;
  synth::World world;  // keeps the synthetic dataset alive when used
  synth::Dataset dataset;
  if (snapshot_path != nullptr) {
    auto index_or = index::InvertedIndex::FromSnapshotFile(snapshot_path);
    if (!index_or.ok()) return Fail(index_or.status());
    loaded = std::move(index_or).value();
    full = &loaded;
  } else {
    world = synth::World::Generate(synth::TinyWorldOptions());
    dataset = synth::BuildDataset(world, synth::TinyDatasetSpec());
    full = &dataset.index;
  }

  index::ShardedIndex sharded = index::ShardedIndex::Split(*full, num_shards);
  Status valid = sharded.Validate();
  if (!valid.ok()) return Fail(valid);

  const index::ShardManifest& manifest = sharded.manifest();
  std::printf("index shard-info: %zu documents, %llu tokens, %zu shards\n",
              full->NumDocuments(),
              static_cast<unsigned long long>(full->TotalTokens()),
              sharded.num_shards());
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    const index::InvertedIndex& shard = sharded.shard(s);
    std::printf("  shard %-3zu docs [%u, %u)  %6zu docs  %8llu tokens  "
                "%6zu terms  %9zu snapshot bytes\n",
                s, (unsigned)manifest.shard_begin(s),
                (unsigned)manifest.shard_end(s), shard.NumDocuments(),
                static_cast<unsigned long long>(shard.TotalTokens()),
                shard.vocabulary().size(),
                shard.SerializeToString().size());
  }
  std::printf("manifest: %zu bytes, validation OK\n",
              manifest.SerializeToString().size());
  return 0;
}

// Bytes one term's postings occupy in the v4 packed region (blob + the
// per-block offset and position-base tables). Raw-mode lists are encoded
// block by block into scratch, mirroring what serialization would emit.
uint64_t TermPackedBytes(const index::PostingList& pl) {
  const uint64_t tables =
      static_cast<uint64_t>(pl.NumBlocks()) * (sizeof(uint32_t) +
                                               sizeof(uint64_t));
  if (pl.packed()) return pl.packed_bytes().size() + tables;
  std::vector<index::DocId> docs;
  std::vector<uint32_t> freqs;
  pl.Materialize(&docs, &freqs);
  std::string scratch;
  for (size_t b = 0; b < pl.NumBlocks(); ++b) {
    const size_t begin = b * index::PostingList::kBlockSize;
    index::codec::EncodeBlock(docs.data() + begin, freqs.data() + begin,
                              pl.BlockLength(b),
                              b == 0 ? 0 : docs[begin - 1] + 1, &scratch);
  }
  return scratch.size() + tables;
}

// Bytes the same term occupies in the v3 raw region (docs + freqs +
// pos_offsets arrays).
uint64_t TermRawBytes(const index::PostingList& pl) {
  const uint64_t n = pl.NumDocs();
  return n * (sizeof(uint32_t) + sizeof(uint32_t)) +
         (n + 1) * sizeof(uint64_t);
}

int IndexStats(const char* snapshot_path) {
  index::InvertedIndex loaded;
  const index::InvertedIndex* full = nullptr;
  synth::World world;
  synth::Dataset dataset;
  if (snapshot_path != nullptr) {
    auto index_or = index::InvertedIndex::FromSnapshotFile(snapshot_path);
    if (!index_or.ok()) return Fail(index_or.status());
    loaded = std::move(index_or).value();
    full = &loaded;
  } else {
    world = synth::World::Generate(synth::TinyWorldOptions());
    dataset = synth::BuildDataset(world, synth::TinyDatasetSpec());
    full = &dataset.index;
  }

  const index::InvertedIndex::PostingsStats stats =
      full->ComputePostingsStats();
  std::printf("index stats: %zu documents, %zu terms, %llu postings, "
              "%llu blocks, simd %s (hardware %s)\n",
              full->NumDocuments(), full->vocabulary().size(),
              static_cast<unsigned long long>(stats.num_postings),
              static_cast<unsigned long long>(stats.num_blocks),
              SimdLevelName(DetectSimdLevel()),
              SimdLevelName(HardwareSimdLevel()));
  const double ratio =
      stats.raw_bytes > 0 ? static_cast<double>(stats.packed_bytes) /
                                static_cast<double>(stats.raw_bytes)
                          : 0.0;
  std::printf("postings region: raw %llu bytes, packed %llu bytes "
              "(ratio %.3f, %.2f bits/posting packed)\n",
              static_cast<unsigned long long>(stats.raw_bytes),
              static_cast<unsigned long long>(stats.packed_bytes), ratio,
              stats.num_postings > 0
                  ? 8.0 * static_cast<double>(stats.packed_bytes) /
                        static_cast<double>(stats.num_postings)
                  : 0.0);
  for (const auto& [label, hist] :
       {std::pair<const char*, const uint64_t*>{"doc bits ",
                                                stats.doc_bits_blocks},
        {"freq bits", stats.freq_bits_blocks}}) {
    std::printf("%s:", label);
    for (int w = 0; w <= 32; ++w) {
      if (hist[w] == 0) continue;
      std::printf("  %d:%llu", w, static_cast<unsigned long long>(hist[w]));
    }
    std::printf("  (width:blocks)\n");
  }

  // The heaviest posting lists, with their individual ratios: where the
  // bytes actually live.
  std::vector<text::TermId> terms(full->vocabulary().size());
  for (size_t t = 0; t < terms.size(); ++t) {
    terms[t] = static_cast<text::TermId>(t);
  }
  std::sort(terms.begin(), terms.end(),
            [&](text::TermId a, text::TermId b) {
              return full->Postings(a).NumDocs() > full->Postings(b).NumDocs();
            });
  const size_t top = std::min<size_t>(terms.size(), 8);
  for (size_t i = 0; i < top; ++i) {
    const index::PostingList& pl = full->Postings(terms[i]);
    if (pl.NumDocs() == 0) break;
    const uint64_t raw = TermRawBytes(pl);
    const uint64_t packed = TermPackedBytes(pl);
    std::printf("  %-24s %7zu postings  %9llu raw  %9llu packed  (%.3f)\n",
                std::string(full->vocabulary().TermOf(terms[i])).c_str(),
                pl.NumDocs(), static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(packed),
                static_cast<double>(packed) / static_cast<double>(raw));
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sqe_tool gen-dump <out.dump>\n"
               "  sqe_tool compile <in.dump> <out.snap>\n"
               "  sqe_tool kb-stats <in.dump|in.snap>\n"
               "  sqe_tool motifs <in.dump|in.snap> <article title>\n"
               "  sqe_tool batch [num_threads] [--cache] [--shards N] "
               "[--prune]\n"
               "                 [--load heap|mapped] [--codec raw|packed]\n"
               "  sqe_tool serve-sim [--workers N] [--capacity C] "
               "[--deadline-ms D]\n"
               "                     [--batch-every K] [--repeat R] "
               "[--shards S] [--prune]\n"
               "                     [--swap E]\n"
               "  sqe_tool index shard-info <num_shards> [index.snap]\n"
               "  sqe_tool index stats [index.snap]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "batch") {
    size_t threads = ThreadPool::HardwareConcurrency();
    bool with_cache = false;
    bool with_prune = false;
    size_t shards = 1;
    BatchLoad load = BatchLoad::kDirect;
    uint32_t index_version = io::kIndexSnapshotVersion;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--cache") == 0) {
        with_cache = true;
        continue;
      }
      if (std::strcmp(argv[i], "--prune") == 0) {
        with_prune = true;
        continue;
      }
      if (std::strcmp(argv[i], "--codec") == 0) {
        const char* value = (i + 1 < argc) ? argv[i + 1] : "";
        if (std::strcmp(value, "raw") == 0) {
          index_version = io::kAlignedSnapshotVersion;
        } else if (std::strcmp(value, "packed") == 0) {
          index_version = io::kIndexSnapshotVersion;
        } else {
          std::fprintf(stderr, "error: --codec needs 'raw' or 'packed'\n");
          return 1;
        }
        ++i;
        continue;
      }
      if (std::strcmp(argv[i], "--load") == 0) {
        const char* value = (i + 1 < argc) ? argv[i + 1] : "";
        if (std::strcmp(value, "heap") == 0) {
          load = BatchLoad::kHeap;
        } else if (std::strcmp(value, "mapped") == 0) {
          load = BatchLoad::kMapped;
        } else {
          std::fprintf(stderr, "error: --load needs 'heap' or 'mapped'\n");
          return 1;
        }
        ++i;
        continue;
      }
      if (std::strcmp(argv[i], "--shards") == 0) {
        char* end = nullptr;
        long parsed =
            (i + 1 < argc) ? std::strtol(argv[i + 1], &end, 10) : 0;
        if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
            parsed < 1 || parsed > 4096) {
          std::fprintf(stderr,
                       "error: --shards needs an integer in [1, 4096]\n");
          return 1;
        }
        shards = static_cast<size_t>(parsed);
        ++i;
        continue;
      }
      char* end = nullptr;
      long parsed = std::strtol(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || parsed < 0 || parsed > 1024) {
        std::fprintf(stderr,
                     "error: num_threads must be an integer in [0, 1024], "
                     "got '%s'\n",
                     argv[i]);
        return 1;
      }
      threads = static_cast<size_t>(parsed);
    }
    return Batch(threads, with_cache, shards, with_prune, load,
                 index_version);
  }
  if (command == "serve-sim") {
    size_t workers = 2;
    size_t capacity = 64;
    double deadline_ms = 0.0;
    size_t batch_every = 4;
    size_t repeat = 1;
    size_t shards = 1;
    bool with_prune = false;
    size_t swaps = 0;
    auto parse_size = [&](const char* flag, int* i, size_t lo, size_t hi,
                          size_t* out) {
      char* end = nullptr;
      long parsed =
          (*i + 1 < argc) ? std::strtol(argv[*i + 1], &end, 10) : -1;
      if (*i + 1 >= argc || end == argv[*i + 1] || *end != '\0' ||
          parsed < static_cast<long>(lo) || parsed > static_cast<long>(hi)) {
        std::fprintf(stderr, "error: %s needs an integer in [%zu, %zu]\n",
                     flag, lo, hi);
        return false;
      }
      *out = static_cast<size_t>(parsed);
      ++*i;
      return true;
    };
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--workers") == 0) {
        if (!parse_size("--workers", &i, 1, 256, &workers)) return 1;
      } else if (std::strcmp(argv[i], "--capacity") == 0) {
        if (!parse_size("--capacity", &i, 1, 1 << 20, &capacity)) return 1;
      } else if (std::strcmp(argv[i], "--batch-every") == 0) {
        if (!parse_size("--batch-every", &i, 0, 1 << 20, &batch_every)) {
          return 1;
        }
      } else if (std::strcmp(argv[i], "--repeat") == 0) {
        if (!parse_size("--repeat", &i, 1, 4096, &repeat)) return 1;
      } else if (std::strcmp(argv[i], "--shards") == 0) {
        if (!parse_size("--shards", &i, 1, 4096, &shards)) return 1;
      } else if (std::strcmp(argv[i], "--swap") == 0) {
        if (!parse_size("--swap", &i, 1, 64, &swaps)) return 1;
      } else if (std::strcmp(argv[i], "--prune") == 0) {
        with_prune = true;
      } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
        char* end = nullptr;
        double parsed =
            (i + 1 < argc) ? std::strtod(argv[i + 1], &end) : -1.0;
        if (i + 1 >= argc || end == argv[i + 1] || *end != '\0' ||
            parsed < 0.0) {
          std::fprintf(stderr,
                       "error: --deadline-ms needs a number >= 0\n");
          return 1;
        }
        deadline_ms = parsed;
        ++i;
      } else {
        return Usage();
      }
    }
    if (swaps > 0) {
      return ServeSimSwap(workers, capacity, deadline_ms, batch_every,
                          repeat, shards, with_prune, swaps);
    }
    return ServeSim(workers, capacity, deadline_ms, batch_every, repeat,
                    shards, with_prune);
  }
  if (command == "index" && argc >= 4 &&
      std::strcmp(argv[2], "shard-info") == 0) {
    char* end = nullptr;
    long parsed = std::strtol(argv[3], &end, 10);
    if (end == argv[3] || *end != '\0' || parsed < 1 || parsed > 4096) {
      std::fprintf(stderr,
                   "error: num_shards must be an integer in [1, 4096], "
                   "got '%s'\n",
                   argv[3]);
      return 1;
    }
    return IndexShardInfo(static_cast<size_t>(parsed),
                          argc >= 5 ? argv[4] : nullptr);
  }
  if (command == "index" && argc >= 3 &&
      std::strcmp(argv[2], "stats") == 0) {
    return IndexStats(argc >= 4 ? argv[3] : nullptr);
  }
  if (argc < 3) return Usage();
  if (command == "gen-dump") return GenDump(argv[2]);
  if (command == "compile" && argc >= 4) return Compile(argv[2], argv[3]);
  if (command == "kb-stats") return KbStats(argv[2]);
  if (command == "motifs" && argc >= 4) return Motifs(argv[2], argv[3]);
  return Usage();
}
