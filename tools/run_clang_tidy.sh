#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the project
# .clang-tidy config and the compile_commands.json exported by CMake.
#
# Usage: tools/run_clang_tidy.sh [build_dir] [-- extra clang-tidy args]
#   build_dir defaults to ./build; it is configured automatically (with
#   compile-command export) if no compile_commands.json is present yet.
#
# Exits non-zero if clang-tidy reports any finding (WarningsAsErrors is '*'
# in .clang-tidy), so CI can gate on it. Prints a clear skip message and
# exits 0 if clang-tidy is not installed, so local runs on machines without
# LLVM don't fail spuriously — CI installs clang-tidy and does gate.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy_bin="${CLANG_TIDY:-}"
if [ -z "$tidy_bin" ]; then
  for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                   clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      tidy_bin="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy_bin" ]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping." >&2
  echo "Install LLVM (or set CLANG_TIDY=/path/to/clang-tidy) to run the" >&2
  echo "static-analysis gate locally. CI runs it on every push." >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: exporting compile commands into $build_dir" >&2
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# All first-party sources: the library tree plus tools and benches. Tests
# are intentionally excluded (gtest macros trip bugprone checks).
mapfile -t sources < <(find "$repo_root/src" "$repo_root/tools" \
  -name '*.cc' | sort)

echo "run_clang_tidy.sh: $tidy_bin over ${#sources[@]} files" >&2
failures=0
for src in "${sources[@]}"; do
  if ! "$tidy_bin" -p "$build_dir" --quiet "$@" "$src"; then
    failures=$((failures + 1))
    echo "clang-tidy FAILED: $src" >&2
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "run_clang_tidy.sh: $failures file(s) with findings" >&2
  exit 1
fi
echo "run_clang_tidy.sh: clean" >&2
