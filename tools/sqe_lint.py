#!/usr/bin/env python3
"""Project lint gate: rules the compilers cannot express.

Runs clean on the whole tree (a named CI gate and a ctest); each rule exists
because the property it checks was either the site of a real bug or is a
project-wide convention whose violations compile silently.

Rules:
  bare-sync-primitive   std::mutex / std::lock_guard / std::condition_variable
                        (and friends) anywhere but common/thread_annotations.h.
                        Bare primitives bypass the thread-safety annotations
                        AND the debug deadlock detector.
  raw-clock             sleep_for / sleep_until / system_clock outside
                        common/clock.{h,cc}. All time flows through the Clock
                        interface so tests can inject FakeClock; a raw sleep
                        is a flaky test or an untestable timeout.
  unguarded-mutex       every `Mutex` member declared under src/ must have at
                        least one SQE_GUARDED_BY(that_mutex) user in the same
                        file — a mutex protecting nothing (or protecting
                        state only by convention) defeats the analysis.
  check-in-hot-header   no SQE_CHECK/SQE_CHECK_MSG in the hot-path headers
                        whose per-posting/per-term asserts were deliberately
                        converted to debug-only SQE_DCHECK (seek/decode inner
                        loops); reintroducing one silently costs release
                        throughput.
  single-magic-def      snapshot magic/version/alignment constants — and
                        any 0x5351 ("SQ..") literal — are defined only in
                        src/io/snapshot_format.h. That includes the v3
                        aligned-layout constants (kAlignedSnapshotVersion,
                        kSnapshotAlignment) and the v4 packed-postings
                        version threshold (kPackedPostingsSnapshotVersion):
                        a forked alignment or version threshold would
                        silently split the format. Likewise the v4 codec
                        geometry (kBlockLen, kBlockHeaderBytes) lives only
                        in src/index/postings_codec.h — a second block
                        length or header width would desynchronize encoder
                        and decoder. Tests may build their own non-SQ
                        magics; production formats may not fork.

Usage:
  sqe_lint.py --root <repo-root>    lint the tree (exit 1 on findings)
  sqe_lint.py --self-test           prove every rule fires on a synthetic
                                    violation and stays quiet on clean code
"""

import argparse
import os
import re
import sys

LINT_DIRS = ["src", "tests", "fuzz", "tools", "bench", "examples"]
EXTENSIONS = {".h", ".cc"}

BARE_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?)\b"
)
RAW_CLOCK_RE = re.compile(r"\b(?:sleep_for|sleep_until|system_clock)\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*(?:;|\{|=)", re.MULTILINE
)
SQE_CHECK_RE = re.compile(r"\bSQE_CHECK(?:_MSG)?\s*\(")
MAGIC_LITERAL_RE = re.compile(r"0[xX]5351")
MAGIC_DEF_RE = re.compile(
    r"\bconstexpr\s+uint32_t\s+"
    r"k\w*(?:Magic|SnapshotVersion|SnapshotAlignment)\b"
)
CODEC_DEF_RE = re.compile(
    r"\bconstexpr\s+(?:uint32_t|size_t)\s+"
    r"k\w*(?:BlockLen|BlockHeaderBytes)\b"
)

# Headers whose inner loops run per posting / per term during retrieval.
HOT_HEADERS = [
    "src/index/vocabulary.h",
    "src/index/postings.h",
    "src/index/inverted_index.h",
    "src/index/shard_manifest.h",
    "src/index/sharded_index.h",
    "src/kb/knowledge_base.h",
    "src/retrieval/shard_router.h",
]

MAGIC_HOME = "src/io/snapshot_format.h"
CODEC_HOME = "src/index/postings_codec.h"
SYNC_HOME = "src/common/thread_annotations.h"
CLOCK_HOMES = {"src/common/clock.h", "src/common/clock.cc"}


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving newlines and
    column positions so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # str | chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def lint_file(rel_path, raw):
    """Lints one file's contents; rel_path uses forward slashes."""
    findings = []
    code = strip_comments_and_strings(raw)

    if rel_path != SYNC_HOME:
        for m in BARE_SYNC_RE.finditer(code):
            findings.append(Finding(
                rel_path, line_of(code, m.start()), "bare-sync-primitive",
                f"{m.group(0)} bypasses the annotated Mutex/CondVar wrappers "
                f"(and the debug deadlock detector); use "
                f"common/thread_annotations.h"))

    if rel_path not in CLOCK_HOMES:
        for m in RAW_CLOCK_RE.finditer(code):
            findings.append(Finding(
                rel_path, line_of(code, m.start()), "raw-clock",
                f"{m.group(0)} outside common/clock: inject a Clock "
                f"(FakeClock in tests) instead of touching real time"))

    if rel_path.startswith("src/"):
        for m in MUTEX_MEMBER_RE.finditer(code):
            name = m.group(1)
            if f"SQE_GUARDED_BY({name})" not in code:
                findings.append(Finding(
                    rel_path, line_of(code, m.start()), "unguarded-mutex",
                    f"Mutex member '{name}' has no SQE_GUARDED_BY({name}) "
                    f"user in this file; annotate what it protects"))

    if rel_path in HOT_HEADERS:
        for m in SQE_CHECK_RE.finditer(code):
            findings.append(Finding(
                rel_path, line_of(code, m.start()), "check-in-hot-header",
                "SQE_CHECK in a hot-path header: use SQE_DCHECK (the "
                "release-build cost of per-posting checks is why these "
                "headers were converted)"))

    if rel_path != MAGIC_HOME:
        for m in MAGIC_LITERAL_RE.finditer(code):
            findings.append(Finding(
                rel_path, line_of(code, m.start()), "single-magic-def",
                "raw 0x5351 snapshot-magic literal; use the named constant "
                "from io/snapshot_format.h"))
        if rel_path.startswith("src/"):
            for m in MAGIC_DEF_RE.finditer(code):
                findings.append(Finding(
                    rel_path, line_of(code, m.start()), "single-magic-def",
                    "snapshot magic/version constant defined outside "
                    "io/snapshot_format.h"))

    if rel_path.startswith("src/") and rel_path != CODEC_HOME:
        for m in CODEC_DEF_RE.finditer(code):
            findings.append(Finding(
                rel_path, line_of(code, m.start()), "single-magic-def",
                "posting-codec geometry constant defined outside "
                "index/postings_codec.h; a second block length or header "
                "width would desynchronize encoder and decoder"))

    return findings


def lint_tree(root):
    findings = []
    for top in LINT_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, _, filenames in os.walk(top_path):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] not in EXTENSIONS:
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    findings.extend(lint_file(rel, f.read()))
    return findings


# ---- self-test --------------------------------------------------------------

SELF_TEST_CASES = [
    ("bare-sync-primitive", "src/foo/bar.cc",
     "#include <mutex>\nstd::mutex mu;\nstd::lock_guard<std::mutex> l(mu);\n"),
    ("bare-sync-primitive", "tests/t.cc",
     "void f() { std::condition_variable cv; }\n"),
    ("raw-clock", "src/foo/bar.cc",
     "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n"),
    ("raw-clock", "tests/t.cc",
     "auto t = std::chrono::system_clock::now();\n"),
    ("unguarded-mutex", "src/foo/bar.h",
     "class C {\n  mutable Mutex mu_{\"c\"};\n  int x_ = 0;\n};\n"),
    ("check-in-hot-header", "src/index/postings.h",
     "inline void f(int n) { SQE_CHECK(n > 0); }\n"),
    ("check-in-hot-header", "src/kb/knowledge_base.h",
     "inline void f(int n) { SQE_CHECK_MSG(n > 0, \"n\"); }\n"),
    ("single-magic-def", "src/foo/bar.cc",
     "uint32_t magic = 0x53514B42;\n"),
    ("single-magic-def", "src/foo/format.h",
     "inline constexpr uint32_t kFooSnapshotMagic = 0x46464646;\n"),
    # The v3 aligned-layout constants may not fork either.
    ("single-magic-def", "src/foo/format.h",
     "inline constexpr uint32_t kMySnapshotAlignment = 32;\n"),
    ("single-magic-def", "src/foo/format.h",
     "inline constexpr uint32_t kMyAlignedSnapshotVersion = 4;\n"),
    # The v4 packed-postings version threshold may not fork either.
    ("single-magic-def", "src/foo/format.h",
     "inline constexpr uint32_t kPackedPostingsSnapshotVersion = 5;\n"),
    # Codec geometry is pinned to index/postings_codec.h.
    ("single-magic-def", "src/foo/codec.h",
     "inline constexpr size_t kMyBlockLen = 64;\n"),
    ("single-magic-def", "src/foo/codec.h",
     "inline constexpr size_t kFooBlockHeaderBytes = 4;\n"),
]

CLEAN_SNIPPETS = [
    # Comment and string mentions must not fire.
    ("src/foo/ok.cc",
     "// std::mutex is banned; 0x5351 too\n"
     "/* sleep_for(1s) would be flaky */\n"
     "const char* s = \"std::mutex 0x5351 sleep_for\";\n"),
    # Annotated mutex with a guarded member is the blessed pattern.
    ("src/foo/ok.h",
     "class C {\n  mutable Mutex mu_{\"c\"};\n"
     "  int x_ SQE_GUARDED_BY(mu_) = 0;\n};\n"),
    # SQE_DCHECK in a hot header is exactly what the rule asks for.
    ("src/index/postings.h",
     "inline void f(int n) { SQE_DCHECK(n > 0); }\n"),
    # Tests may define their own (non-SQ) magics.
    ("tests/io_test.cc",
     "constexpr uint32_t kTestMagic = 0x54534E50;\n"),
    # Using (not defining) the aligned-layout constants is fine anywhere.
    ("src/foo/ok2.cc",
     "size_t pad = io::kSnapshotAlignment - (size % io::kSnapshotAlignment);\n"),
    # Using the codec geometry constants is fine anywhere too.
    ("src/foo/ok3.cc",
     "uint32_t buf[codec::kBlockLen];\n"
     "const uint8_t* p = packed + codec::kBlockHeaderBytes;\n"),
]


def self_test():
    failures = 0
    for rule, path, snippet in SELF_TEST_CASES:
        found = [f for f in lint_file(path, snippet) if f.rule == rule]
        if not found:
            print(f"SELF-TEST FAIL: rule '{rule}' did not fire on {path!r}:"
                  f"\n{snippet}", file=sys.stderr)
            failures += 1
    for path, snippet in CLEAN_SNIPPETS:
        found = lint_file(path, snippet)
        if found:
            print(f"SELF-TEST FAIL: clean snippet {path!r} raised: "
                  + "; ".join(map(str, found)), file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(f"self-test OK: {len(SELF_TEST_CASES)} violations caught, "
          f"{len(CLEAN_SNIPPETS)} clean snippets quiet")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on synthetic violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"sqe_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("sqe_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
