#!/usr/bin/env bash
# Format gate over CHANGED files only (the tree predates .clang-format, so a
# whole-tree check would demand a reformat commit; instead the gate ratchets:
# anything you touch must be clean).
#
# Usage: tools/check_format.sh [base_ref]
#   base_ref defaults to origin/main (falling back to HEAD~1 when that ref
#   does not exist, e.g. in a shallow or detached checkout). Changed .cc/.h
#   files between the merge base and the working tree are checked with
#   clang-format --dry-run --Werror.
#
# Prints a skip message and exits 0 when clang-format is not installed, so
# local runs without LLVM don't fail spuriously — CI installs it and gates.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

fmt_bin="${CLANG_FORMAT:-}"
if [ -z "$fmt_bin" ]; then
  for candidate in clang-format clang-format-20 clang-format-19 \
                   clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      fmt_bin="$candidate"
      break
    fi
  done
fi
if [ -z "$fmt_bin" ]; then
  echo "check_format.sh: clang-format not found on PATH; skipping." >&2
  echo "Install LLVM (or set CLANG_FORMAT=...) to run the format gate" >&2
  echo "locally. CI runs it on every push." >&2
  exit 0
fi

base_ref="${1:-origin/main}"
if ! git rev-parse --verify --quiet "$base_ref" > /dev/null; then
  base_ref="HEAD~1"
fi
if ! git rev-parse --verify --quiet "$base_ref" > /dev/null; then
  echo "check_format.sh: no usable base ref; skipping." >&2
  exit 0
fi
merge_base="$(git merge-base "$base_ref" HEAD)"

mapfile -t changed < <(git diff --name-only --diff-filter=ACMR \
  "$merge_base" -- '*.cc' '*.h' | sort)
if [ "${#changed[@]}" -eq 0 ]; then
  echo "check_format.sh: no changed C++ files against $base_ref" >&2
  exit 0
fi

echo "check_format.sh: $fmt_bin over ${#changed[@]} changed file(s)" >&2
failures=0
for f in "${changed[@]}"; do
  [ -f "$f" ] || continue
  if ! "$fmt_bin" --dry-run --Werror "$f"; then
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_format.sh: $failures file(s) need clang-format" >&2
  exit 1
fi
echo "check_format.sh: clean" >&2
