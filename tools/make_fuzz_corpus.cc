// Deterministic seed-corpus generator for the fuzz harnesses (fuzz/).
//
//   make_fuzz_corpus <corpus_root>          (re)write fuzz/corpus/<target>/*
//   make_fuzz_corpus --check <corpus_root>  verify committed files match the
//                                           generator byte-for-byte
//
// Every seed is built from fixed inputs (no clocks, no ambient randomness;
// the one Rng use is fix-seeded), so regeneration is reproducible on any
// machine — `--check` runs as a ctest gate to keep the committed corpus and
// this generator from drifting apart. Files the generator does not know
// about (e.g. minimized crash inputs committed as regressions) are left
// alone and NOT flagged by --check: the generator owns only its own names.
//
// Seed design per target:
//  - fuzz_kb_snapshot / fuzz_index_snapshot: a valid snapshot (so mutation
//    starts from deep coverage), classic corruptions (truncation, bit flip),
//    and CRC-RESIGNED payload corruptions that reach the decoders and
//    Validate() instead of dying at the checksum — including the posting
//    delta-gap wraparound class a real decode bug once lived in.
//  - fuzz_coding: one input per opcode of fuzz_coding.cc's dispatch,
//    including overlong varints and absurd length prefixes.
//  - fuzz_postings_codec: valid packed blocks (full, ragged, max-gap),
//    truncations, over-width headers, and a stale-width block the encoder
//    would never emit but the decoder must accept.
//  - fuzz_text_pipeline: linkable phrases, NER-fallback bait, invalid
//    UTF-8, and pathological token shapes.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/random.h"
#include "index/inverted_index.h"
#include "index/postings_codec.h"
#include "index/shard_manifest.h"
#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"
#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"

namespace sqe {
namespace {

struct Seed {
  std::string target;  // fuzz target name == corpus subdirectory
  std::string name;    // file name inside the subdirectory
  std::string bytes;
};

kb::KnowledgeBase MakeCorpusKb() {
  kb::KbBuilder builder;
  std::vector<kb::ArticleId> articles;
  for (int i = 0; i < 16; ++i) {
    articles.push_back(builder.AddArticle("Seed Article " + std::to_string(i)));
  }
  std::vector<kb::CategoryId> cats;
  for (int i = 0; i < 6; ++i) {
    cats.push_back(builder.AddCategory("Category:Seed" + std::to_string(i)));
  }
  Rng rng(0xC0FFEE);
  for (int e = 0; e < 48; ++e) {
    auto a = articles[rng.NextBounded(articles.size())];
    auto b = articles[rng.NextBounded(articles.size())];
    if (a != b) builder.AddArticleLink(a, b);
  }
  builder.AddReciprocalLink(articles[0], articles[1]);
  builder.AddReciprocalLink(articles[2], articles[3]);
  builder.AddReciprocalLink(articles[1], articles[4]);
  for (auto a : articles) {
    builder.AddMembership(a, cats[rng.NextBounded(cats.size())]);
    builder.AddMembership(a, cats[rng.NextBounded(cats.size())]);
  }
  builder.AddCategoryLink(cats[1], cats[0]);
  builder.AddCategoryLink(cats[2], cats[0]);
  builder.AddCategoryLink(cats[3], cats[1]);
  return std::move(builder).Build();
}

index::InvertedIndex MakeCorpusIndex() {
  index::IndexBuilder builder;
  const std::vector<std::string> lexicon = {"motif", "graph",  "query",
                                            "wiki",  "link",   "node",
                                            "expand", "rank",  "score"};
  Rng rng(0xD0C5);
  // 150 documents all containing "common": the posting list spans multiple
  // 128-posting blocks, so the blockmax tables have real structure.
  for (int d = 0; d < 150; ++d) {
    std::vector<std::string> terms = {"common"};
    const size_t len = 2 + rng.NextBounded(6);
    for (size_t i = 0; i < len; ++i) {
      terms.push_back(lexicon[rng.NextBounded(lexicon.size())]);
      if (rng.NextBounded(4) == 0) terms.push_back("common");
    }
    builder.AddDocument("doc-" + std::to_string(d), terms);
  }
  return std::move(builder).Build();
}

std::string FlipByte(std::string image, size_t offset, uint8_t mask) {
  SQE_CHECK(offset < image.size());
  image[offset] = static_cast<char>(image[offset] ^ static_cast<char>(mask));
  return image;
}

// Rebuilds `image` with `block` replaced by mutate(payload) and all CRCs
// valid — corruption that reaches the decoders, not the checksum.
std::string ResignBlock(const std::string& image, uint32_t magic,
                        std::string_view block,
                        std::string (*mutate)(std::string)) {
  auto reader = io::SnapshotReader::Open(image, magic);
  SQE_CHECK(reader.ok());
  io::SnapshotWriter writer(magic, reader->version());
  for (const std::string& name : reader->BlockNames()) {
    auto payload = reader->GetBlock(name);
    SQE_CHECK(payload.ok());
    std::string bytes(payload.value());
    if (name == block) bytes = mutate(std::move(bytes));
    writer.AddBlock(name, std::move(bytes));
  }
  return writer.Serialize();
}

std::string HeaderOnlySnapshot(uint32_t magic) {
  std::string out;
  io::PutFixed32(&out, magic);
  io::PutVarint32(&out, 1);
  io::PutFixed32(&out, io::kSnapshotFooterMagic);
  return out;
}

// A legacy container naming the same block twice, every CRC valid: only
// SnapshotReader::Open's duplicate-name rejection stands between this and
// two blocks shadowing each other.
std::string DuplicateBlockSnapshot(uint32_t magic) {
  std::string out;
  io::PutFixed32(&out, magic);
  io::PutVarint32(&out, 1);
  for (int i = 0; i < 2; ++i) {
    io::PutLengthPrefixed(&out, "dup");
    io::PutLengthPrefixed(&out, "payload");
    io::PutFixed32(&out, Crc32("payload"));
  }
  io::PutFixed32(&out, io::kSnapshotFooterMagic);
  return out;
}

std::vector<Seed> GenerateSeeds() {
  std::vector<Seed> seeds;

  // ---- fuzz_kb_snapshot ----------------------------------------------------
  kb::KnowledgeBase corpus_kb = MakeCorpusKb();
  const std::string kb_image = corpus_kb.SerializeToString(1);  // legacy
  const std::string kb_v3 = corpus_kb.SerializeToString();      // aligned
  seeds.push_back({"fuzz_kb_snapshot", "valid_kb", kb_image});
  seeds.push_back({"fuzz_kb_snapshot", "truncated_kb",
                   kb_image.substr(0, kb_image.size() * 2 / 3)});
  seeds.push_back({"fuzz_kb_snapshot", "bitflip_kb",
                   FlipByte(kb_image, kb_image.size() / 2, 0x10)});
  seeds.push_back(
      {"fuzz_kb_snapshot", "resigned_article_links",
       ResignBlock(kb_image, io::kKbSnapshotMagic, "article_links",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 0, 0x01);
                   })});
  seeds.push_back({"fuzz_kb_snapshot", "empty", ""});
  seeds.push_back({"fuzz_kb_snapshot", "header_only",
                   HeaderOnlySnapshot(io::kKbSnapshotMagic)});
  seeds.push_back({"fuzz_kb_snapshot", "wrong_magic",
                   HeaderOnlySnapshot(io::kIndexSnapshotMagic)});
  seeds.push_back({"fuzz_kb_snapshot", "duplicate_block",
                   DuplicateBlockSnapshot(io::kKbSnapshotMagic)});
  // Aligned (v3) seeds: the raw-array layout plus corruptions of persisted
  // derived structures, which only load-time validation can reject.
  seeds.push_back({"fuzz_kb_snapshot", "valid_kb_v3", kb_v3});
  seeds.push_back({"fuzz_kb_snapshot", "truncated_kb_v3",
                   kb_v3.substr(0, kb_v3.size() * 2 / 3)});
  seeds.push_back({"fuzz_kb_snapshot", "bitflip_kb_v3",
                   FlipByte(kb_v3, kb_v3.size() / 2, 0x10)});
  seeds.push_back(
      {"fuzz_kb_snapshot", "resigned_v3_title_order",
       ResignBlock(kb_v3, io::kKbSnapshotMagic, "titles.article_order",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 0, 0x01);
                   })});
  seeds.push_back(
      {"fuzz_kb_snapshot", "resigned_v3_reciprocal",
       ResignBlock(kb_v3, io::kKbSnapshotMagic, "csr.reciprocal.targets",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 0, 0x01);
                   })});

  // ---- fuzz_index_snapshot -------------------------------------------------
  index::InvertedIndex corpus_index = MakeCorpusIndex();
  const std::string index_image = corpus_index.SerializeToString(2);  // legacy
  const std::string index_v3 =
      corpus_index.SerializeToString(io::kAlignedSnapshotVersion);
  const std::string index_v4 = corpus_index.SerializeToString();  // packed
  seeds.push_back({"fuzz_index_snapshot", "valid_index", index_image});
  seeds.push_back(
      {"fuzz_index_snapshot", "valid_manifest",
       index::ShardManifest::Balanced(97, 4).SerializeToString()});
  seeds.push_back({"fuzz_index_snapshot", "truncated_index",
                   index_image.substr(0, index_image.size() / 2)});
  seeds.push_back({"fuzz_index_snapshot", "bitflip_index",
                   FlipByte(index_image, index_image.size() / 3, 0x40)});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_blockmax",
       ResignBlock(index_image, io::kIndexSnapshotMagic, "blockmax",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 1, 0x02);
                   })});
  // The delta-gap wraparound class: overwrite the head of the postings
  // payload with maximal varint bytes so decoded doc-id gaps sum far past
  // num_docs. CRC re-signed, so only the decoder's own overflow checks
  // stand between this and a silently-wrong index.
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_postings_gap_wraparound",
       ResignBlock(index_image, io::kIndexSnapshotMagic, "postings",
                   [](std::string p) {
                     for (size_t i = 0; i < p.size() && i < 12; ++i) {
                       p[i] = static_cast<char>(0xFF);
                     }
                     return p;
                   })});
  seeds.push_back({"fuzz_index_snapshot", "header_only",
                   HeaderOnlySnapshot(io::kIndexSnapshotMagic)});
  seeds.push_back({"fuzz_index_snapshot", "valid_index_v3", index_v3});
  seeds.push_back({"fuzz_index_snapshot", "truncated_index_v3",
                   index_v3.substr(0, index_v3.size() / 2)});
  seeds.push_back({"fuzz_index_snapshot", "bitflip_index_v3",
                   FlipByte(index_v3, index_v3.size() / 3, 0x40)});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_v3_block_last",
       ResignBlock(index_v3, io::kIndexSnapshotMagic, "post.block_last",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 0, 0x01);
                   })});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_v3_doc_index",
       ResignBlock(index_v3, io::kIndexSnapshotMagic, "post.doc_index",
                   [](std::string p) {
                     // Wreck a concatenation index table entry: slicing
                     // bounds are the aligned loader's first line of
                     // defense.
                     return p.size() < 9 ? p
                                         : FlipByte(std::move(p), 8, 0xFF);
                   })});
  // Packed-postings (v4) seeds. The resigned ones all pass every CRC and
  // reach the packed validator: a width header claiming different lane
  // sizes (the term's byte budget no longer matches), a payload byte deep
  // in a block (decoded docs diverge from the stored block-last anchors),
  // a block offset table no longer starting at 0, and a stale position
  // base.
  seeds.push_back({"fuzz_index_snapshot", "valid_index_v4", index_v4});
  seeds.push_back({"fuzz_index_snapshot", "truncated_index_v4",
                   index_v4.substr(0, index_v4.size() / 2)});
  seeds.push_back({"fuzz_index_snapshot", "bitflip_index_v4",
                   FlipByte(index_v4, index_v4.size() / 3, 0x40)});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_v4_packed_width",
       ResignBlock(index_v4, io::kIndexSnapshotMagic, "post.packed",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 0, 0x04);
                   })});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_v4_packed_payload",
       ResignBlock(index_v4, io::kIndexSnapshotMagic, "post.packed",
                   [](std::string p) {
                     return p.size() < 40
                                ? p
                                : FlipByte(std::move(p), 37, 0x20);
                   })});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_v4_blockoffs",
       ResignBlock(index_v4, io::kIndexSnapshotMagic, "post.blockoffs",
                   [](std::string p) {
                     return p.empty() ? p : FlipByte(std::move(p), 0, 0x01);
                   })});
  seeds.push_back(
      {"fuzz_index_snapshot", "resigned_v4_posbase",
       ResignBlock(index_v4, io::kIndexSnapshotMagic, "post.block_posbase",
                   [](std::string p) {
                     return p.size() < 9 ? p
                                         : FlipByte(std::move(p), 8, 0x01);
                   })});

  // ---- fuzz_postings_codec -------------------------------------------------
  // Harness framing: [n-1 byte][4-byte LE anchor][encoded block].
  auto codec_input = [](size_t n, uint32_t prev_plus1, std::string block) {
    std::string out(1, static_cast<char>(n - 1));
    io::PutFixed32(&out, prev_plus1);
    out += block;
    return out;
  };
  auto encode_block = [](std::span<const uint32_t> docs,
                         std::span<const uint32_t> freqs,
                         uint32_t prev_plus1) {
    std::string out;
    index::codec::EncodeBlock(docs.data(), freqs.data(), docs.size(),
                              prev_plus1, &out);
    return out;
  };
  {
    // A full 128-posting block with mixed gaps and frequencies.
    std::vector<uint32_t> docs, freqs;
    uint32_t d = 7;
    Rng crng(0xB175);
    for (int i = 0; i < 128; ++i) {
      docs.push_back(d);
      d += 1 + static_cast<uint32_t>(crng.NextBounded(900));
      freqs.push_back(1 + static_cast<uint32_t>(crng.NextBounded(9)));
    }
    const std::string full = encode_block(docs, freqs, 3);
    seeds.push_back(
        {"fuzz_postings_codec", "valid_full_block", codec_input(128, 3, full)});
    seeds.push_back({"fuzz_postings_codec", "truncated_full_block",
                     codec_input(128, 3, full.substr(0, full.size() - 3))});
    // Width header claiming an impossible 33-bit lane.
    std::string overwidth = full;
    overwidth[0] = static_cast<char>(33);
    seeds.push_back({"fuzz_postings_codec", "overwidth_header",
                     codec_input(128, 3, overwidth)});
    // Length byte disagreeing with the payload (ragged n over a full-block
    // payload).
    seeds.push_back(
        {"fuzz_postings_codec", "length_mismatch", codec_input(100, 3, full)});
  }
  {
    // Ragged final block with all-ones frequencies (zero-byte freq lane).
    std::vector<uint32_t> docs, freqs;
    for (uint32_t i = 0; i < 37; ++i) {
      docs.push_back(1000 + 3 * i);
      freqs.push_back(1);
    }
    seeds.push_back({"fuzz_postings_codec", "valid_ragged_allones",
                     codec_input(37, 1000, encode_block(docs, freqs, 1000))});
  }
  {
    // Doc ids at the top of the id space: 32-bit gap lanes, and one step
    // from the checked decoder's u64 overflow rejection.
    const std::vector<uint32_t> docs = {0xFFFFFFF0u, 0xFFFFFFFEu};
    const std::vector<uint32_t> freqs = {2, 1};
    seeds.push_back({"fuzz_postings_codec", "max_doc_gap",
                     codec_input(2, 0, encode_block(docs, freqs, 0))});
  }
  {
    // Hand-built stale-width block: 5-bit doc and 1-bit freq lanes over
    // all-zero payload bytes decode to consecutive doc ids and frequency 1
    // — wider than the values need, which the encoder would never emit but
    // the decoder must accept and round-trip smaller.
    const size_t n = 16;
    std::string stale;
    stale.push_back(static_cast<char>(5));
    stale.push_back(static_cast<char>(1));
    stale.append(index::codec::PackedPayloadBytes(n, 5) +
                     index::codec::PackedPayloadBytes(n, 1),
                 '\0');
    seeds.push_back(
        {"fuzz_postings_codec", "stale_widths", codec_input(n, 42, stale)});
  }

  // ---- fuzz_coding ---------------------------------------------------------
  auto op = [](uint8_t opcode, std::string payload) {
    std::string out(1, static_cast<char>(opcode));
    out += payload;
    return out;
  };
  std::string varint32;
  io::PutVarint32(&varint32, 300);
  io::PutVarint32(&varint32, 0xFFFFFFFFu);
  seeds.push_back({"fuzz_coding", "varint32_roundtrip", op(0, varint32)});
  seeds.push_back(
      {"fuzz_coding", "varint32_overlong",
       op(0, std::string(10, static_cast<char>(0xFF)))});
  std::string varint64;
  io::PutVarint64(&varint64, 0x0123456789ABCDEFull);
  seeds.push_back({"fuzz_coding", "varint64_roundtrip", op(1, varint64)});
  std::string fixed;
  io::PutFixed32(&fixed, 0xDEADBEEF);
  io::PutFixed64(&fixed, 0x0102030405060708ull);
  seeds.push_back({"fuzz_coding", "fixed_roundtrip", op(2, fixed)});
  std::string prefixed;
  io::PutLengthPrefixed(&prefixed, "hello snapshot");
  seeds.push_back({"fuzz_coding", "length_prefixed", op(3, prefixed)});
  std::string absurd_len;
  io::PutVarint64(&absurd_len, 1ull << 60);
  absurd_len += "short";
  seeds.push_back({"fuzz_coding", "length_prefix_absurd", op(3, absurd_len)});
  std::string zigzag;
  io::PutVarint64(&zigzag, io::ZigZagEncode64(-123456789));
  seeds.push_back({"fuzz_coding", "zigzag_negative", op(4, zigzag)});
  seeds.push_back({"fuzz_coding", "crc_chaining",
                   op(5, "chain me across an arbitrary split point")});
  seeds.push_back({"fuzz_coding", "snapshot_probe_kb", op(6, kb_image)});
  seeds.push_back(
      {"fuzz_coding", "snapshot_probe_truncated",
       op(6, index_image.substr(0, index_image.size() / 4))});
  seeds.push_back({"fuzz_coding", "snapshot_probe_kb_v3", op(6, kb_v3)});
  seeds.push_back({"fuzz_coding", "snapshot_probe_dup_block",
                   op(6, DuplicateBlockSnapshot(io::kKbSnapshotMagic))});

  // ---- fuzz_text_pipeline --------------------------------------------------
  seeds.push_back({"fuzz_text_pipeline", "linkable_phrase",
                   "new york city jazz clubs"});
  seeds.push_back({"fuzz_text_pipeline", "ner_fallback_bait",
                   "We toured the Museum of Modern Art yesterday"});
  seeds.push_back({"fuzz_text_pipeline", "ambiguous_substring",
                   "york versus new york city"});
  seeds.push_back({"fuzz_text_pipeline", "invalid_utf8",
                   std::string("caf\xC3") + '\x28' + "\xFF\xFE jazz \x80"});
  seeds.push_back({"fuzz_text_pipeline", "punctuation_soup",
                   "!!!...   ---((new)) york:::city??? [jazz]"});
  seeds.push_back({"fuzz_text_pipeline", "long_token",
                   std::string(512, 'a') + " jazz"});
  seeds.push_back({"fuzz_text_pipeline", "empty", ""});

  return seeds;
}

int Write(const std::filesystem::path& root, const std::vector<Seed>& seeds) {
  for (const Seed& seed : seeds) {
    const std::filesystem::path dir = root / seed.target;
    std::filesystem::create_directories(dir);
    std::ofstream out(dir / seed.name, std::ios::binary | std::ios::trunc);
    out.write(seed.bytes.data(),
              static_cast<std::streamsize>(seed.bytes.size()));
    if (!out) {
      std::fprintf(stderr, "failed to write %s/%s\n", seed.target.c_str(),
                   seed.name.c_str());
      return 1;
    }
  }
  std::printf("wrote %zu seeds under %s\n", seeds.size(), root.c_str());
  return 0;
}

int Check(const std::filesystem::path& root, const std::vector<Seed>& seeds) {
  int mismatches = 0;
  for (const Seed& seed : seeds) {
    const std::filesystem::path path = root / seed.target / seed.name;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "MISSING   %s\n", path.c_str());
      ++mismatches;
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (bytes != seed.bytes) {
      std::fprintf(stderr, "MISMATCH  %s (committed %zu bytes, generator "
                   "%zu bytes)\n",
                   path.c_str(), bytes.size(), seed.bytes.size());
      ++mismatches;
    }
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "%d corpus file(s) out of date; rerun "
                 "make_fuzz_corpus %s\n",
                 mismatches, root.c_str());
    return 1;
  }
  std::printf("%zu seeds match the generator\n", seeds.size());
  return 0;
}

}  // namespace
}  // namespace sqe

int main(int argc, char** argv) {
  bool check = false;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      root = argv[i];
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "usage: %s [--check] <corpus_root>\n", argv[0]);
    return 2;
  }
  const std::vector<sqe::Seed> seeds = sqe::GenerateSeeds();
  return check ? sqe::Check(root, seeds) : sqe::Write(root, seeds);
}
