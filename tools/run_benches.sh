#!/usr/bin/env bash
# Builds the benchmark suite in Release and refreshes the committed
# BENCH_*.json trajectory files at the repo root, so perf is comparable
# across PRs. Run from anywhere inside the repo:
#
#   tools/run_benches.sh [build_dir]
#
# The build directory defaults to build-rel and is configured with
# -DCMAKE_BUILD_TYPE=Release on first use (the default dev build carries no
# optimization flags — never commit numbers from it). Note the usual caveat
# for this container: 1 hardware thread, so threaded sections measure
# overhead, not speedup; treat cross-PR deltas, not absolutes, as signal.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-rel}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target batch_throughput serving_latency \
  micro_core

cd "$build_dir"
echo "==> batch_throughput"
./bench/batch_throughput
echo "==> serving_latency"
./bench/serving_latency
echo "==> micro_core"
# The scoring-kernel microbenches, including the exhaustive-vs-WAND pruning
# pair; headline per-query numbers live in BENCH_batch.json's `pruning`
# object (written by batch_throughput above), this run is the detailed view.
./bench/micro_core --benchmark_min_time=0.5

cp BENCH_batch.json BENCH_serving.json "$repo_root/"
echo "refreshed $repo_root/BENCH_batch.json and BENCH_serving.json"
